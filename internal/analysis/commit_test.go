package analysis

import (
	"testing"
	"time"

	"ethmeasure/internal/types"
)

// buildConfirmedChain extends the fixture with a main chain long enough
// for confirmation analysis, with block i observed at blockTime(i).
func buildConfirmedChain(f *fixture, n int, txsInFirst []types.Hash) []*types.Block {
	parent := f.reg.Genesis()
	blocks := make([]*types.Block, 0, n)
	for i := 0; i < n; i++ {
		var txs []types.Hash
		if i == 0 {
			txs = txsInFirst
		}
		b := f.block(parent, 1, txs)
		parent = b
		at := time.Duration(i+1) * 10 * time.Second
		f.observe("EA", at, b, "block")
		f.observe("NA", at+time.Second, b, "block")
		blocks = append(blocks, b)
	}
	return blocks
}

func TestCommitTimesKnownDelays(t *testing.T) {
	f := newFixture(t)
	txHash := types.Hash(0xA1)
	blocks := buildConfirmedChain(f, 40, []types.Hash{txHash})
	_ = blocks
	// Tx observed at t=2s; including block observed at t=10s.
	f.observeTx("EA", 2*time.Second, txHash, 1, 0)
	f.observeTx("WE", 3*time.Second, txHash, 1, 0)

	res := CommitTimes(f.d)
	if res.CommittedTxs != 1 {
		t.Fatalf("committed = %d", res.CommittedTxs)
	}
	if got := res.InclusionSec.MustQuantile(0.5); got != 8 {
		t.Errorf("inclusion = %fs, want 8", got)
	}
	// k-th confirmation block observed at (1+k)*10s → delay (1+k)*10-2.
	for _, k := range ConfirmationLevels {
		want := float64((1+k)*10 - 2)
		if got := res.ConfirmSec[k].MustQuantile(0.5); got != want {
			t.Errorf("%d-conf = %f, want %f", k, got, want)
		}
	}
	if res.Median12Sec != 128 {
		t.Errorf("median 12-conf = %f", res.Median12Sec)
	}
}

func TestCommitTimesCensorsUnconfirmed(t *testing.T) {
	f := newFixture(t)
	txHash := types.Hash(0xA2)
	// Chain of only 5 blocks: 3-conf exists, 12-conf does not.
	buildConfirmedChain(f, 5, []types.Hash{txHash})
	f.observeTx("EA", time.Second, txHash, 1, 0)
	res := CommitTimes(f.d)
	if res.ConfirmSec[3].N() != 1 {
		t.Errorf("3-conf samples = %d", res.ConfirmSec[3].N())
	}
	if res.ConfirmSec[12].N() != 0 {
		t.Errorf("12-conf samples = %d, want censored", res.ConfirmSec[12].N())
	}
}

func TestCommitTimesIgnoresUncommitted(t *testing.T) {
	f := newFixture(t)
	buildConfirmedChain(f, 15, nil)
	f.observeTx("EA", time.Second, types.Hash(0xA3), 1, 0) // never included
	res := CommitTimes(f.d)
	if res.CommittedTxs != 0 {
		t.Errorf("committed = %d, want 0", res.CommittedTxs)
	}
}

func TestTransactionOrderingDetection(t *testing.T) {
	f := newFixture(t)
	// Three txs from one sender; nonce 1 observed AFTER nonce 2
	// (out-of-order); a second sender is fully in order.
	h0, h1, h2 := types.Hash(0xB0), types.Hash(0xB1), types.Hash(0xB2)
	hx := types.Hash(0xB9)
	parent := f.reg.Genesis()
	incl := f.block(parent, 1, []types.Hash{h0, h1, h2, hx})
	f.observe("EA", 10*time.Second, incl, "block")
	parent = incl
	for i := 0; i < 14; i++ {
		b := f.block(parent, 1, nil)
		parent = b
		f.observe("EA", time.Duration(11+i)*10*time.Second, b, "block")
	}

	f.observeTx("EA", 1*time.Second, h0, 1, 0)
	f.observeTx("EA", 3*time.Second, h2, 1, 2) // nonce 2 first...
	f.observeTx("EA", 4*time.Second, h1, 1, 1) // ...then nonce 1: OOO
	f.observeTx("EA", 2*time.Second, hx, 2, 0)

	res := TransactionOrdering(f.d)
	if res.CommittedTxs != 4 {
		t.Fatalf("committed = %d", res.CommittedTxs)
	}
	if res.OutOfOrderTxs != 1 {
		t.Fatalf("out-of-order = %d, want exactly 1 (nonce 1)", res.OutOfOrderTxs)
	}
	if res.OutOfOrderShare != 0.25 {
		t.Errorf("share = %f", res.OutOfOrderShare)
	}
	// Commit delay = 12-conf observation (13th block at t=130s... block
	// index 12 observed at (11+11)*10=220? verify via samples > 0).
	if res.InOrderSec.N() != 3 || res.OutOfOrderSec.N() != 1 {
		t.Errorf("sample counts %d/%d", res.InOrderSec.N(), res.OutOfOrderSec.N())
	}
	if res.OutOfOrderP50 <= 0 {
		t.Error("OOO commit delay must be positive")
	}
}

func TestTransactionOrderingRunningMax(t *testing.T) {
	f := newFixture(t)
	// Nonces observed at times: n0=10s, n1=2s, n2=5s. Both n1 and n2
	// precede n0's observation → both out-of-order.
	hashes := []types.Hash{0xC0, 0xC1, 0xC2}
	parent := f.reg.Genesis()
	incl := f.block(parent, 1, hashes)
	f.observe("EA", 20*time.Second, incl, "block")
	parent = incl
	for i := 0; i < 13; i++ {
		b := f.block(parent, 1, nil)
		parent = b
		f.observe("EA", time.Duration(3+i)*20*time.Second, b, "block")
	}
	f.observeTx("EA", 10*time.Second, hashes[0], 1, 0)
	f.observeTx("EA", 2*time.Second, hashes[1], 1, 1)
	f.observeTx("EA", 5*time.Second, hashes[2], 1, 2)

	res := TransactionOrdering(f.d)
	if res.OutOfOrderTxs != 2 {
		t.Errorf("out-of-order = %d, want 2 (running max, not adjacent pairs)", res.OutOfOrderTxs)
	}
}

func TestTransactionOrderingUncommittedExcluded(t *testing.T) {
	f := newFixture(t)
	buildConfirmedChain(f, 15, nil)
	f.observeTx("EA", time.Second, types.Hash(0xD0), 1, 0)
	res := TransactionOrdering(f.d)
	if res.CommittedTxs != 0 {
		t.Errorf("committed = %d", res.CommittedTxs)
	}
	if res.OutOfOrderShare != 0 {
		t.Error("share should be 0 with no committed txs")
	}
}
