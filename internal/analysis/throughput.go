package analysis

import (
	"ethmeasure/internal/types"
)

// ThroughputResult quantifies the paper's §V resource-waste argument:
// forks, empty blocks and uncle mining all consume mining power and
// network capacity without advancing the main chain.
type ThroughputResult struct {
	// Blocks.
	TotalBlocks int
	MainBlocks  int
	SideBlocks  int

	// SidePowerShare is the fraction of all mining power spent on
	// blocks that never joined the main chain (paper §V: ~1% of the
	// platform's computational resources go to mining forks).
	SidePowerShare float64

	// Transactions.
	CommittedTxs  int
	CommittedTxPS float64 // committed transactions per second

	// EmptyBlockCapacityLoss is the transaction capacity thrown away
	// by empty main blocks, measured in potential transactions
	// (empty blocks × observed average of non-empty main blocks).
	EmptyBlockCapacityLoss float64

	// EffectiveUtilization is committed txs over the capacity of all
	// main blocks had each carried the average non-empty load.
	EffectiveUtilization float64

	// DuplicateTxInclusions counts transaction inclusions repeated
	// across fork blocks — network and validation work spent twice.
	DuplicateTxInclusions int
}

// Throughput computes the §V waste analysis.
func Throughput(d *Dataset) *ThroughputResult {
	reg := d.Chain
	mainSet := reg.MainChainSet()
	genesis := reg.Genesis().Hash

	res := &ThroughputResult{}
	nonEmptyMain := 0
	mainTxs := 0
	seenTx := make(map[types.Hash]bool, 4096)
	reg.Blocks(func(b *types.Block) bool {
		if b.Hash == genesis || b.Miner == 0 {
			return true
		}
		res.TotalBlocks++
		if mainSet[b.Hash] {
			res.MainBlocks++
			mainTxs += len(b.TxHashes)
			if !b.Empty() {
				nonEmptyMain++
			}
		} else {
			res.SideBlocks++
		}
		for _, h := range b.TxHashes {
			if seenTx[h] {
				res.DuplicateTxInclusions++
			}
			seenTx[h] = true
		}
		return true
	})

	if res.TotalBlocks > 0 {
		res.SidePowerShare = float64(res.SideBlocks) / float64(res.TotalBlocks)
	}
	res.CommittedTxs = mainTxs
	if d.Duration > 0 {
		res.CommittedTxPS = float64(mainTxs) / d.Duration.Seconds()
	}
	if nonEmptyMain > 0 {
		avgLoad := float64(mainTxs) / float64(nonEmptyMain)
		emptyMain := res.MainBlocks - nonEmptyMain
		res.EmptyBlockCapacityLoss = float64(emptyMain) * avgLoad
		potential := avgLoad * float64(res.MainBlocks)
		if potential > 0 {
			res.EffectiveUtilization = float64(mainTxs) / potential
		}
	}
	return res
}
