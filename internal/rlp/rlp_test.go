package rlp

import (
	"bytes"
	"testing"
	"testing/quick"

	"ethmeasure/internal/types"
)

// Known vectors from the Ethereum wiki RLP specification.
func TestEncodeKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		item Item
		want []byte
	}{
		{"dog", String([]byte("dog")), []byte{0x83, 'd', 'o', 'g'}},
		{"cat-dog list", List(String([]byte("cat")), String([]byte("dog"))),
			[]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}},
		{"empty string", String(nil), []byte{0x80}},
		{"empty list", List(), []byte{0xc0}},
		{"zero", Uint(0), []byte{0x80}},
		{"fifteen", Uint(15), []byte{0x0f}},
		{"1024", Uint(1024), []byte{0x82, 0x04, 0x00}},
		{"single low byte", String([]byte{0x7f}), []byte{0x7f}},
		{"single high byte", String([]byte{0x80}), []byte{0x81, 0x80}},
		{"set of three", List(List(), List(List()), List(List(), List(List()))),
			[]byte{0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0}},
	}
	for _, tt := range tests {
		got := Encode(tt.item)
		if !bytes.Equal(got, tt.want) {
			t.Errorf("%s: encode = %x, want %x", tt.name, got, tt.want)
		}
		if size := EncodedSize(tt.item); size != len(tt.want) {
			t.Errorf("%s: EncodedSize = %d, want %d", tt.name, size, len(tt.want))
		}
	}
}

func TestEncodeLongString(t *testing.T) {
	// "Lorem ipsum..." style 56-byte string gets a long-form header.
	s := bytes.Repeat([]byte{'a'}, 56)
	got := Encode(String(s))
	if got[0] != 0xb8 || got[1] != 56 {
		t.Errorf("long string header = %x %x", got[0], got[1])
	}
	if len(got) != 58 {
		t.Errorf("encoded length = %d", len(got))
	}
}

func TestEncodeLongList(t *testing.T) {
	items := make([]Item, 30)
	for i := range items {
		items[i] = String([]byte{0x41, 0x42})
	}
	got := Encode(Item{List: true, Items: items})
	// 30 × 3 bytes payload = 90 > 55 → long-form list header.
	if got[0] != 0xf8 || got[1] != 90 {
		t.Errorf("long list header = %x %x", got[0], got[1])
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	items := []Item{
		String(nil),
		String([]byte("hello world")),
		Uint(7),
		Uint(1 << 40),
		List(),
		List(Uint(1), List(String([]byte("nested")), Uint(2)), String(bytes.Repeat([]byte{9}, 100))),
	}
	for i, item := range items {
		enc := Encode(item)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("item %d: decode: %v", i, err)
		}
		if !bytes.Equal(Encode(dec), enc) {
			t.Errorf("item %d: round trip changed encoding", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"truncated string", []byte{0x83, 'd', 'o'}},
		{"truncated list", []byte{0xc8, 0x83}},
		{"trailing bytes", []byte{0x80, 0x00}},
		{"non-canonical single byte", []byte{0x81, 0x7f}},
		{"non-canonical long form", []byte{0xb8, 0x01, 0xff}},
		{"leading zero length", []byte{0xb9, 0x00, 0x38}},
	}
	for _, tt := range tests {
		if _, err := Decode(tt.in); err == nil {
			t.Errorf("%s: decode accepted %x", tt.name, tt.in)
		}
	}
}

func TestDecodeUint(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 255, 256, 1 << 20, 1<<63 + 5} {
		got, err := DecodeUint(Uint(v))
		if err != nil {
			t.Fatalf("DecodeUint(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d → %d", v, got)
		}
	}
	if _, err := DecodeUint(List()); err == nil {
		t.Error("list accepted as uint")
	}
	if _, err := DecodeUint(String([]byte{0, 1})); err == nil {
		t.Error("leading-zero integer accepted")
	}
	if _, err := DecodeUint(String(bytes.Repeat([]byte{1}, 9))); err == nil {
		t.Error("9-byte integer accepted")
	}
}

// Property: encode→decode→encode is the identity on canonical items,
// and EncodedSize always equals len(Encode).
func TestRLPRoundTripProperty(t *testing.T) {
	f := func(raw [][]byte, nest uint8) bool {
		var items []Item
		for _, b := range raw {
			items = append(items, String(b))
		}
		item := Item{List: true, Items: items}
		if nest%2 == 0 && len(items) > 0 {
			item = List(item, items[0])
		}
		enc := Encode(item)
		if EncodedSize(item) != len(enc) {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(Encode(dec), enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizesRealistic(t *testing.T) {
	tx := &types.Transaction{Nonce: 42, GasPrice: 20}
	txSize := TxWireSize(tx)
	// A plain transfer is ~110 bytes on mainnet.
	if txSize < 90 || txSize > 140 {
		t.Errorf("tx wire size = %d, want ≈110", txSize)
	}

	b := &types.Block{Number: 7_500_000, TotalDiff: 123456, TxHashes: make([]types.Hash, 100)}
	blockSize := BlockWireSize(b, nil)
	// A 100-tx block was ~12-25 kB in the measurement period.
	if blockSize < 10_000 || blockSize > 30_000 {
		t.Errorf("block wire size = %d, want ≈12-25kB", blockSize)
	}
	empty := &types.Block{Number: 7_500_000, TotalDiff: 123456}
	emptySize := BlockWireSize(empty, nil)
	if emptySize < 500 || emptySize > 800 {
		t.Errorf("empty block wire size = %d, want ≈540-700", emptySize)
	}
	if emptySize >= blockSize {
		t.Error("empty block must be smaller than a full one")
	}

	annSize := AnnouncementWireSize(7_500_000)
	if annSize < 35 || annSize > 48 {
		t.Errorf("announcement wire size = %d, want ≈38-40", annSize)
	}
}

func TestHeaderItemSize(t *testing.T) {
	b := &types.Block{Number: 7_500_000}
	size := EncodedSize(HeaderItem(b))
	// Mainnet headers are ~500-550 bytes.
	if size < 450 || size > 600 {
		t.Errorf("header size = %d, want ≈500-550", size)
	}
}
