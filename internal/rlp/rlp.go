// Package rlp implements Ethereum's Recursive Length Prefix encoding
// (Appendix B of the Yellow Paper), the serialization used by every
// devp2p message the paper's instrumented client logged. The simulator
// uses it to derive wire sizes of blocks, transactions and
// announcements from their actual encodings rather than constants.
//
// Supported item types: byte strings and lists, with helpers for
// unsigned integers (big-endian, no leading zeros — canonical RLP).
package rlp

import (
	"errors"
	"fmt"
)

// Item is an RLP item: either a byte string (List == false) or a list
// of items (List == true).
type Item struct {
	List  bool
	Str   []byte
	Items []Item
}

// String creates a byte-string item.
func String(b []byte) Item { return Item{Str: b} }

// Uint creates the canonical integer encoding: big-endian bytes with
// no leading zeros; zero encodes as the empty string.
func Uint(v uint64) Item {
	if v == 0 {
		return Item{}
	}
	var buf [8]byte
	n := 0
	for shift := 56; shift >= 0; shift -= 8 {
		b := byte(v >> shift)
		if n == 0 && b == 0 {
			continue
		}
		buf[n] = b
		n++
	}
	return Item{Str: buf[:n]}
}

// List creates a list item.
func List(items ...Item) Item { return Item{List: true, Items: items} }

// Encode serializes an item.
func Encode(item Item) []byte {
	var out []byte
	return appendItem(out, item)
}

// EncodedSize returns the exact serialized length without allocating
// the full encoding.
func EncodedSize(item Item) int {
	if !item.List {
		n := len(item.Str)
		if n == 1 && item.Str[0] < 0x80 {
			return 1
		}
		return n + headerSize(n)
	}
	payload := 0
	for _, sub := range item.Items {
		payload += EncodedSize(sub)
	}
	return payload + headerSize(payload)
}

func headerSize(payloadLen int) int {
	if payloadLen <= 55 {
		return 1
	}
	return 1 + lenOfLen(payloadLen)
}

func lenOfLen(n int) int {
	size := 0
	for n > 0 {
		size++
		n >>= 8
	}
	return size
}

func appendItem(out []byte, item Item) []byte {
	if !item.List {
		return appendString(out, item.Str)
	}
	var payload []byte
	for _, sub := range item.Items {
		payload = appendItem(payload, sub)
	}
	out = appendHeader(out, 0xc0, len(payload))
	return append(out, payload...)
}

func appendString(out, s []byte) []byte {
	if len(s) == 1 && s[0] < 0x80 {
		return append(out, s[0])
	}
	out = appendHeader(out, 0x80, len(s))
	return append(out, s...)
}

func appendHeader(out []byte, base byte, payloadLen int) []byte {
	if payloadLen <= 55 {
		return append(out, base+byte(payloadLen))
	}
	ll := lenOfLen(payloadLen)
	out = append(out, base+55+byte(ll))
	for shift := (ll - 1) * 8; shift >= 0; shift -= 8 {
		out = append(out, byte(payloadLen>>shift))
	}
	return out
}

// Decoding errors.
var (
	ErrTruncated    = errors.New("rlp: input truncated")
	ErrTrailing     = errors.New("rlp: trailing bytes")
	ErrNonCanonical = errors.New("rlp: non-canonical encoding")
)

// Decode parses a single item and requires the input to be fully
// consumed.
func Decode(b []byte) (Item, error) {
	item, rest, err := decodeItem(b)
	if err != nil {
		return Item{}, err
	}
	if len(rest) != 0 {
		return Item{}, ErrTrailing
	}
	return item, nil
}

func decodeItem(b []byte) (Item, []byte, error) {
	if len(b) == 0 {
		return Item{}, nil, ErrTruncated
	}
	prefix := b[0]
	switch {
	case prefix < 0x80: // single byte
		return Item{Str: b[:1]}, b[1:], nil
	case prefix <= 0xb7: // short string
		n := int(prefix - 0x80)
		if len(b) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		s := b[1 : 1+n]
		if n == 1 && s[0] < 0x80 {
			return Item{}, nil, ErrNonCanonical // should be single-byte form
		}
		return Item{Str: s}, b[1+n:], nil
	case prefix <= 0xbf: // long string
		ll := int(prefix - 0xb7)
		n, rest, err := readLength(b[1:], ll)
		if err != nil {
			return Item{}, nil, err
		}
		if n <= 55 {
			return Item{}, nil, ErrNonCanonical
		}
		if len(rest) < n {
			return Item{}, nil, ErrTruncated
		}
		return Item{Str: rest[:n]}, rest[n:], nil
	case prefix <= 0xf7: // short list
		n := int(prefix - 0xc0)
		if len(b) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		items, err := decodeList(b[1 : 1+n])
		if err != nil {
			return Item{}, nil, err
		}
		return Item{List: true, Items: items}, b[1+n:], nil
	default: // long list
		ll := int(prefix - 0xf7)
		n, rest, err := readLength(b[1:], ll)
		if err != nil {
			return Item{}, nil, err
		}
		if n <= 55 {
			return Item{}, nil, ErrNonCanonical
		}
		if len(rest) < n {
			return Item{}, nil, ErrTruncated
		}
		items, err := decodeList(rest[:n])
		if err != nil {
			return Item{}, nil, err
		}
		return Item{List: true, Items: items}, rest[n:], nil
	}
}

func readLength(b []byte, ll int) (int, []byte, error) {
	if len(b) < ll {
		return 0, nil, ErrTruncated
	}
	if ll == 0 || b[0] == 0 {
		return 0, nil, ErrNonCanonical
	}
	if ll > 7 {
		return 0, nil, fmt.Errorf("rlp: length of length %d unsupported", ll)
	}
	n := 0
	for i := 0; i < ll; i++ {
		n = n<<8 | int(b[i])
	}
	return n, b[ll:], nil
}

func decodeList(payload []byte) ([]Item, error) {
	var items []Item
	for len(payload) > 0 {
		item, rest, err := decodeItem(payload)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		payload = rest
	}
	return items, nil
}

// DecodeUint interprets a byte-string item as a canonical unsigned
// integer.
func DecodeUint(item Item) (uint64, error) {
	if item.List {
		return 0, fmt.Errorf("rlp: expected string, got list")
	}
	if len(item.Str) > 8 {
		return 0, fmt.Errorf("rlp: integer too large (%d bytes)", len(item.Str))
	}
	if len(item.Str) > 0 && item.Str[0] == 0 {
		return 0, ErrNonCanonical
	}
	var v uint64
	for _, b := range item.Str {
		v = v<<8 | uint64(b)
	}
	return v, nil
}
