package rlp

import (
	"ethmeasure/internal/types"
)

// Wire-size derivation for the simulator's protocol messages: the
// devp2p payloads the paper's instrumented Geth logged are RLP lists,
// so message sizes come from actual encodings of representative
// structures. Hashes travel as 32-byte strings on the real wire even
// though the simulator indexes them with 64-bit IDs.

const (
	hashWireBytes    = 32
	addressWireBytes = 20
	sigWireBytes     = 32 // r and s each
)

func hashItem() Item { return String(make([]byte, hashWireBytes)) }

// TxItem builds a representative RLP structure for a transaction:
// [nonce, gasPrice, gasLimit, to, value, data, v, r, s].
func TxItem(tx *types.Transaction) Item {
	return List(
		Uint(tx.Nonce),
		Uint(tx.GasPrice*1_000_000_000), // priority units → wei-scale
		Uint(21_000),                    // plain-transfer gas limit
		String(make([]byte, addressWireBytes)),
		Uint(1_000_000_000_000_000_000),    // ~1 ETH value
		String(nil),                        // empty calldata
		Uint(38),                           // v
		String(make([]byte, sigWireBytes)), // r
		String(make([]byte, sigWireBytes)), // s
	)
}

// TxWireSize is the RLP-encoded size of a transaction.
func TxWireSize(tx *types.Transaction) int { return EncodedSize(TxItem(tx)) }

// HeaderItem builds a representative block header:
// [parentHash, uncleHash, coinbase, stateRoot, txRoot, receiptRoot,
// bloom(256), difficulty, number, gasLimit, gasUsed, time, extra,
// mixDigest, nonce(8)].
func HeaderItem(b *types.Block) Item {
	return List(
		hashItem(),                             // parent
		hashItem(),                             // uncle hash
		String(make([]byte, addressWireBytes)), // coinbase
		hashItem(),                             // state root
		hashItem(),                             // tx root
		hashItem(),                             // receipt root
		String(make([]byte, 256)),              // logs bloom
		Uint(2_500_000_000_000_000),            // difficulty scale of the era
		Uint(b.Number),
		Uint(8_000_000),                    // gas limit
		Uint(uint64(len(b.TxHashes))*21e3), // gas used
		Uint(1_554_076_800),                // timestamp scale (Apr 2019)
		String(make([]byte, 24)),           // extra-data (pool tag)
		hashItem(),                         // mix digest
		String(make([]byte, 8)),            // PoW nonce
	)
}

// BlockItem builds a NewBlock payload: [[header, txs, uncles], td].
func BlockItem(b *types.Block, txs []*types.Transaction) Item {
	txItems := make([]Item, 0, len(txs))
	for _, tx := range txs {
		txItems = append(txItems, TxItem(tx))
	}
	uncleItems := make([]Item, 0, len(b.Uncles))
	for range b.Uncles {
		uncleItems = append(uncleItems, HeaderItem(b))
	}
	return List(
		List(HeaderItem(b), Item{List: true, Items: txItems}, Item{List: true, Items: uncleItems}),
		Uint(b.TotalDiff),
	)
}

// BlockWireSize is the RLP-encoded size of a full NewBlock message.
// When tx objects are unavailable it sizes a representative transfer
// per hash.
func BlockWireSize(b *types.Block, txs []*types.Transaction) int {
	if txs == nil && len(b.TxHashes) > 0 {
		representative := &types.Transaction{Nonce: 1000, GasPrice: 20}
		perTx := TxWireSize(representative)
		header := EncodedSize(HeaderItem(b))
		payload := header + perTx*len(b.TxHashes) + EncodedSize(Uint(b.TotalDiff))
		return payload + 6 // outer list headers
	}
	return EncodedSize(BlockItem(b, txs))
}

// AnnouncementWireSize is the RLP size of one NewBlockHashes entry:
// [hash, number].
func AnnouncementWireSize(number uint64) int {
	return EncodedSize(List(hashItem(), Uint(number)))
}
