// Package types defines the core datatypes shared by the chain, p2p,
// mining and measurement packages: hashes, identifiers, transactions
// and blocks. In the simulation, hashes are synthetic 64-bit IDs issued
// by a deterministic counter rather than Keccak digests — collision-free
// by construction and cheap as map keys — since no experiment in the
// paper depends on hash preimages.
package types

import (
	"fmt"
	"time"
)

// Hash identifies a block or transaction. The zero Hash is "no hash".
type Hash uint64

// String formats the hash like a truncated hex digest.
func (h Hash) String() string { return fmt.Sprintf("0x%012x", uint64(h)) }

// IsZero reports whether the hash is unset.
func (h Hash) IsZero() bool { return h == 0 }

// NodeID identifies a node in the simulated network.
type NodeID int32

// String formats the node ID.
func (id NodeID) String() string { return fmt.Sprintf("node-%d", int32(id)) }

// PoolID identifies a miner: either one of the named mining pools or
// the aggregate "remaining miners" population. The zero PoolID means
// "unknown miner".
type PoolID int32

// String formats the pool ID.
func (id PoolID) String() string { return fmt.Sprintf("pool-%d", int32(id)) }

// AccountID identifies a transaction sender.
type AccountID uint32

// String formats the account ID.
func (id AccountID) String() string { return fmt.Sprintf("acct-%d", uint32(id)) }

// Transaction is a user transaction. Every transaction from a sender
// carries a monotonically increasing nonce; miners may only include a
// transaction once all its predecessors are included (paper §III-C2).
type Transaction struct {
	Hash     Hash
	Sender   AccountID
	Nonce    uint64
	GasPrice uint64        // relative priority fee, arbitrary units
	Size     int           // wire size in bytes
	Created  time.Duration // virtual time the sender created it
}

// Block is a mined block. Transactions are referenced by hash; bodies
// travel with the block on the wire (Size accounts for them).
type Block struct {
	Hash       Hash
	Number     uint64 // height
	ParentHash Hash
	Miner      PoolID
	TxHashes   []Hash
	Uncles     []Hash        // uncle block hashes referenced by this block
	Difficulty uint64        // per-block difficulty (constant in simulation)
	TotalDiff  uint64        // cumulative difficulty up to and including this block
	MinedAt    time.Duration // virtual time the miner produced it
	Size       int           // wire size in bytes
}

// Empty reports whether the block contains no transactions
// (paper §III-C3: empty blocks as a form of selfish mining).
func (b *Block) Empty() bool { return len(b.TxHashes) == 0 }

// HashIssuer deterministically issues unique hashes. Not safe for
// concurrent use; the simulation is single-threaded.
type HashIssuer struct {
	next uint64
}

// NewHashIssuer returns an issuer whose first hash is derived from salt,
// letting independent issuers (blocks vs transactions) stay disjoint.
func NewHashIssuer(salt uint64) *HashIssuer {
	return &HashIssuer{next: salt<<48 + 1}
}

// Next returns a fresh, never-before-issued hash.
func (hi *HashIssuer) Next() Hash {
	h := Hash(hi.next)
	hi.next++
	return h
}

// BlockSize estimates the wire size of a block carrying n average
// transactions. Calibrated to 2019 mainnet: ~540-byte header+trailer
// and ~110 bytes per transaction in an RLP-encoded body, landing close
// to the ~20 kB average block of the measurement period.
func BlockSize(nTxs int) int {
	return 540 + nTxs*110
}

// TxSize is the average wire size of a transaction announcement.
const TxSize = 110

// AnnouncementSize is the wire size of a NewBlockHashes entry
// (32-byte hash + 8-byte number + envelope).
const AnnouncementSize = 48
