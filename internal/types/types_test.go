package types

import (
	"testing"
	"testing/quick"
)

func TestHashIssuerUnique(t *testing.T) {
	issuer := NewHashIssuer(1)
	seen := make(map[Hash]bool)
	for i := 0; i < 100000; i++ {
		h := issuer.Next()
		if h.IsZero() {
			t.Fatal("issued zero hash")
		}
		if seen[h] {
			t.Fatalf("duplicate hash %s", h)
		}
		seen[h] = true
	}
}

func TestHashIssuerSaltsDisjoint(t *testing.T) {
	a := NewHashIssuer(1)
	b := NewHashIssuer(2)
	fromA := make(map[Hash]bool)
	for i := 0; i < 10000; i++ {
		fromA[a.Next()] = true
	}
	for i := 0; i < 10000; i++ {
		if h := b.Next(); fromA[h] {
			t.Fatalf("salted issuers collided at %s", h)
		}
	}
}

func TestHashString(t *testing.T) {
	h := Hash(0xabc)
	if got := h.String(); got != "0x000000000abc" {
		t.Errorf("String() = %q", got)
	}
	var zero Hash
	if !zero.IsZero() {
		t.Error("zero hash should report IsZero")
	}
	if Hash(1).IsZero() {
		t.Error("nonzero hash reported IsZero")
	}
}

func TestIDStrings(t *testing.T) {
	if got := NodeID(3).String(); got != "node-3" {
		t.Errorf("NodeID.String() = %q", got)
	}
	if got := PoolID(2).String(); got != "pool-2" {
		t.Errorf("PoolID.String() = %q", got)
	}
	if got := AccountID(7).String(); got != "acct-7" {
		t.Errorf("AccountID.String() = %q", got)
	}
}

func TestBlockEmpty(t *testing.T) {
	b := &Block{}
	if !b.Empty() {
		t.Error("block without txs should be empty")
	}
	b.TxHashes = []Hash{1}
	if b.Empty() {
		t.Error("block with txs reported empty")
	}
}

func TestBlockSizeMonotonic(t *testing.T) {
	if BlockSize(0) <= 0 {
		t.Error("empty block must still have positive size")
	}
	prev := BlockSize(0)
	for n := 1; n <= 300; n += 37 {
		s := BlockSize(n)
		if s <= prev {
			t.Fatalf("BlockSize(%d) = %d not increasing", n, s)
		}
		prev = s
	}
}

// Property: sequentially issued hashes are strictly increasing, which
// the registry relies on for deterministic ordering.
func TestHashIssuerMonotonicProperty(t *testing.T) {
	f := func(salt uint8, n uint8) bool {
		issuer := NewHashIssuer(uint64(salt))
		prev := Hash(0)
		for i := 0; i < int(n)+1; i++ {
			h := issuer.Next()
			if h <= prev {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
