package txpool

import (
	"testing"

	"ethmeasure/internal/types"
)

// BenchmarkAddAndSelect measures the miner-side hot path: transactions
// arriving plus per-block executable selection.
func BenchmarkAddAndSelect(b *testing.B) {
	p := New()
	hash := types.Hash(1)
	nonces := make(map[types.AccountID]uint64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sender := types.AccountID(i%64 + 1)
		hash++
		p.Add(&types.Transaction{
			Hash:     hash,
			Sender:   sender,
			Nonce:    nonces[sender],
			GasPrice: uint64(i%100 + 1),
		})
		nonces[sender]++
		if i%16 == 15 {
			selected := p.Executable(20)
			p.MarkIncluded(selected)
		}
	}
}

func BenchmarkExecutableLargePool(b *testing.B) {
	p := New()
	hash := types.Hash(1)
	for s := types.AccountID(1); s <= 200; s++ {
		for n := uint64(0); n < 10; n++ {
			hash++
			p.Add(&types.Transaction{Hash: hash, Sender: s, Nonce: n, GasPrice: uint64(s)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Executable(150); len(got) != 150 {
			b.Fatalf("selected %d", len(got))
		}
	}
}
