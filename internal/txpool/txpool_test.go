package txpool

import (
	"testing"
	"testing/quick"
	"time"

	"ethmeasure/internal/types"
)

var nextHash types.Hash = 1

func tx(sender types.AccountID, nonce uint64, price uint64) *types.Transaction {
	nextHash++
	return &types.Transaction{
		Hash:     nextHash,
		Sender:   sender,
		Nonce:    nonce,
		GasPrice: price,
		Size:     types.TxSize,
	}
}

func TestAddAndHas(t *testing.T) {
	p := New()
	a := tx(1, 0, 10)
	if !p.Add(a) {
		t.Fatal("fresh tx rejected")
	}
	if !p.Has(a.Hash) {
		t.Error("Has should report pending tx")
	}
	if p.Add(a) {
		t.Error("duplicate accepted")
	}
	if p.Len() != 1 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestAddRejectsStaleNonce(t *testing.T) {
	p := New()
	a := tx(1, 0, 10)
	p.Add(a)
	p.MarkIncluded([]*types.Transaction{a})
	if p.Add(tx(1, 0, 99)) {
		t.Error("stale nonce accepted after inclusion")
	}
	if !p.Add(tx(1, 1, 1)) {
		t.Error("next nonce rejected")
	}
}

func TestAddReplaceByPrice(t *testing.T) {
	p := New()
	low := tx(1, 0, 10)
	p.Add(low)
	sameLow := tx(1, 0, 10)
	if p.Add(sameLow) {
		t.Error("equal-price replacement accepted")
	}
	high := tx(1, 0, 20)
	if !p.Add(high) {
		t.Fatal("higher-price replacement rejected")
	}
	if p.Has(low.Hash) {
		t.Error("replaced tx still present")
	}
	got := p.Executable(1)
	if len(got) != 1 || got[0].Hash != high.Hash {
		t.Errorf("executable = %v", got)
	}
}

func TestExecutableNonceOrderAndGap(t *testing.T) {
	p := New()
	t0 := tx(1, 0, 5)
	t2 := tx(1, 2, 50) // gap at nonce 1
	p.Add(t0)
	p.Add(t2)
	got := p.Executable(10)
	if len(got) != 1 || got[0].Hash != t0.Hash {
		t.Fatalf("executable with gap = %v", got)
	}
	// Filling the gap unlocks the stalled tx.
	t1 := tx(1, 1, 1)
	p.Add(t1)
	got = p.Executable(10)
	if len(got) != 3 {
		t.Fatalf("executable after fill = %d txs", len(got))
	}
	for i, want := range []uint64{0, 1, 2} {
		if got[i].Nonce != want {
			t.Errorf("position %d nonce %d, want %d (nonce order must override price)", i, got[i].Nonce, want)
		}
	}
}

func TestExecutablePriceOrderAcrossSenders(t *testing.T) {
	p := New()
	p.Add(tx(1, 0, 5))
	p.Add(tx(2, 0, 50))
	p.Add(tx(3, 0, 20))
	got := p.Executable(10)
	if len(got) != 3 {
		t.Fatalf("executable = %d", len(got))
	}
	prices := []uint64{got[0].GasPrice, got[1].GasPrice, got[2].GasPrice}
	if prices[0] != 50 || prices[1] != 20 || prices[2] != 5 {
		t.Errorf("price order = %v", prices)
	}
}

func TestExecutableTimeTieBreak(t *testing.T) {
	p := New()
	older := tx(5, 0, 10)
	older.Created = 1 * time.Second
	newer := tx(2, 0, 10) // lower sender ID but later arrival
	newer.Created = 9 * time.Second
	p.Add(newer)
	p.Add(older)
	got := p.Executable(2)
	if len(got) != 2 || got[0].Hash != older.Hash {
		t.Error("same-price txs must be ordered by arrival time")
	}
}

func TestExecutableRespectsMax(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.Add(tx(types.AccountID(i+1), 0, uint64(i+1)))
	}
	if got := p.Executable(4); len(got) != 4 {
		t.Errorf("max ignored: %d", len(got))
	}
	if got := p.Executable(0); got != nil {
		t.Error("max 0 should return nil")
	}
	if got := p.Executable(-1); got != nil {
		t.Error("negative max should return nil")
	}
}

func TestMarkIncludedAdvancesAndRemoves(t *testing.T) {
	p := New()
	a := tx(1, 0, 10)
	b := tx(1, 1, 10)
	p.Add(a)
	p.Add(b)
	p.MarkIncluded([]*types.Transaction{a})
	if p.NextNonce(1) != 1 {
		t.Errorf("next nonce = %d", p.NextNonce(1))
	}
	if p.Has(a.Hash) {
		t.Error("included tx still pending")
	}
	if !p.WasIncluded(a.Hash) {
		t.Error("WasIncluded false")
	}
	got := p.Executable(10)
	if len(got) != 1 || got[0].Hash != b.Hash {
		t.Errorf("executable = %v", got)
	}
}

func TestUnmarkIncludedRestores(t *testing.T) {
	p := New()
	a := tx(1, 0, 10)
	b := tx(1, 1, 10)
	p.Add(a)
	p.Add(b)
	p.MarkIncluded([]*types.Transaction{a, b})
	if p.Len() != 0 {
		t.Fatalf("pending after inclusion = %d", p.Len())
	}
	// Reorg reverts the block containing b only.
	p.UnmarkIncluded([]*types.Transaction{b})
	if p.NextNonce(1) != 1 {
		t.Errorf("next nonce = %d, want rollback to 1", p.NextNonce(1))
	}
	got := p.Executable(10)
	if len(got) != 1 || got[0].Hash != b.Hash {
		t.Errorf("executable after revert = %v", got)
	}
	if p.WasIncluded(b.Hash) {
		t.Error("reverted tx still marked included")
	}
	// Unmarking something never included is a no-op.
	c := tx(2, 0, 1)
	p.UnmarkIncluded([]*types.Transaction{c})
	if p.Has(c.Hash) {
		t.Error("unmark of unknown tx added it")
	}
}

func TestPendingOf(t *testing.T) {
	p := New()
	a := tx(1, 1, 10)
	b := tx(1, 0, 10)
	p.Add(a)
	p.Add(b)
	got := p.PendingOf(1)
	if len(got) != 2 || got[0].Nonce != 0 || got[1].Nonce != 1 {
		t.Errorf("PendingOf = %v", got)
	}
	if len(p.PendingOf(42)) != 0 {
		t.Error("unknown sender should have no pending")
	}
}

func TestExecutableDoesNotMutatePool(t *testing.T) {
	p := New()
	p.Add(tx(1, 0, 10))
	first := p.Executable(10)
	second := p.Executable(10)
	if len(first) != 1 || len(second) != 1 {
		t.Error("Executable must be a read-only selection")
	}
}

// Property: Executable never returns included txs, never violates
// per-sender nonce contiguity, and never exceeds max.
func TestExecutableInvariantsProperty(t *testing.T) {
	f := func(ops []struct {
		Sender uint8
		Nonce  uint8
		Price  uint8
		Mark   bool
	}, max uint8) bool {
		p := New()
		var added []*types.Transaction
		for _, op := range ops {
			sender := types.AccountID(op.Sender%5 + 1)
			candidate := tx(sender, uint64(op.Nonce%8), uint64(op.Price))
			if p.Add(candidate) {
				added = append(added, candidate)
			}
			if op.Mark && len(added) > 0 {
				p.MarkIncluded(added[:1])
				added = added[1:]
			}
		}
		m := int(max%16) + 1
		out := p.Executable(m)
		if len(out) > m {
			return false
		}
		next := make(map[types.AccountID]uint64)
		for s := types.AccountID(1); s <= 5; s++ {
			next[s] = p.NextNonce(s)
		}
		for _, got := range out {
			if p.WasIncluded(got.Hash) {
				return false
			}
			if got.Nonce != next[got.Sender] {
				return false // gap or disorder within sender
			}
			next[got.Sender]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
