// Package txpool implements a miner-side transaction pool with
// Ethereum's per-sender nonce ordering. A transaction is executable
// only when every lower nonce from the same sender is either already
// included in the chain or present in the pool ahead of it; otherwise
// it stalls (a "nonce gap"). Out-of-order arrivals therefore delay
// commits, the effect the paper quantifies in §III-C2 / Figure 5.
package txpool

import (
	"sort"

	"ethmeasure/internal/types"
)

// Pool holds pending transactions for one miner (pool gateway).
type Pool struct {
	pending  map[types.AccountID][]*types.Transaction // sorted by nonce
	byHash   map[types.Hash]*types.Transaction
	nextOnce map[types.AccountID]uint64 // next includable nonce per sender
	included map[types.Hash]bool        // txs included in the miner's chain
}

// New creates an empty pool.
func New() *Pool {
	return &Pool{
		pending:  make(map[types.AccountID][]*types.Transaction),
		byHash:   make(map[types.Hash]*types.Transaction),
		nextOnce: make(map[types.AccountID]uint64),
		included: make(map[types.Hash]bool),
	}
}

// Len returns the number of pending (not yet included) transactions.
func (p *Pool) Len() int { return len(p.byHash) }

// Has reports whether the pool currently holds tx (pending).
func (p *Pool) Has(h types.Hash) bool {
	_, ok := p.byHash[h]
	return ok
}

// Add inserts a transaction. Duplicates, already-included transactions
// and stale nonces (below the sender's next includable nonce) are
// rejected. It reports whether the transaction was accepted.
func (p *Pool) Add(tx *types.Transaction) bool {
	if _, dup := p.byHash[tx.Hash]; dup {
		return false
	}
	if p.included[tx.Hash] {
		return false
	}
	if tx.Nonce < p.nextOnce[tx.Sender] {
		return false // stale: a tx with this nonce already committed
	}
	list := p.pending[tx.Sender]
	// Insert keeping the per-sender list sorted by nonce; replace an
	// existing same-nonce tx only if the newcomer pays more.
	i := sort.Search(len(list), func(i int) bool { return list[i].Nonce >= tx.Nonce })
	if i < len(list) && list[i].Nonce == tx.Nonce {
		if tx.GasPrice <= list[i].GasPrice {
			return false
		}
		delete(p.byHash, list[i].Hash)
		list[i] = tx
	} else {
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i] = tx
	}
	p.pending[tx.Sender] = list
	p.byHash[tx.Hash] = tx
	return true
}

// Executable returns up to max transactions that can legally be
// included in the next block: for each sender, the maximal prefix of
// consecutive nonces starting at the sender's next includable nonce.
// Among executable transactions, higher gas prices are selected first
// (price-sorted selection, as in Geth's miner).
func (p *Pool) Executable(max int) []*types.Transaction {
	if max <= 0 {
		return nil
	}
	type senderQueue struct {
		txs []*types.Transaction // executable prefix, ascending nonce
		idx int
	}
	var queues []*senderQueue
	for sender, list := range p.pending {
		next := p.nextOnce[sender]
		var prefix []*types.Transaction
		for _, tx := range list {
			if tx.Nonce != next {
				break // gap: the rest of this sender's txs stall
			}
			prefix = append(prefix, tx)
			next++
		}
		if len(prefix) > 0 {
			queues = append(queues, &senderQueue{txs: prefix})
		}
	}
	// Deterministic order across map iteration.
	sort.Slice(queues, func(i, j int) bool {
		return queues[i].txs[0].Sender < queues[j].txs[0].Sender
	})

	out := make([]*types.Transaction, 0, max)
	for len(out) < max {
		// Pick the head with the highest gas price; ties go to the
		// oldest transaction (price-then-time ordering, as in Geth's
		// miner — without the time tie-break, same-price senders can
		// starve arbitrarily long under sustained load).
		best := -1
		for i, q := range queues {
			if q.idx >= len(q.txs) {
				continue
			}
			if best == -1 || txPriorityLess(queues[best].txs[queues[best].idx], q.txs[q.idx]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, queues[best].txs[queues[best].idx])
		queues[best].idx++
	}
	return out
}

// txPriorityLess reports whether a has lower inclusion priority than b:
// higher gas price wins, then earlier creation, then lower sender ID
// (a stable total order).
func txPriorityLess(a, b *types.Transaction) bool {
	if a.GasPrice != b.GasPrice {
		return a.GasPrice < b.GasPrice
	}
	if a.Created != b.Created {
		return a.Created > b.Created
	}
	return a.Sender > b.Sender
}

// MarkIncluded records that the given transactions were included in the
// miner's chain, removing them from the pending set and advancing
// per-sender nonces.
func (p *Pool) MarkIncluded(txs []*types.Transaction) {
	for _, tx := range txs {
		p.included[tx.Hash] = true
		if tx.Nonce+1 > p.nextOnce[tx.Sender] {
			p.nextOnce[tx.Sender] = tx.Nonce + 1
		}
		p.removePending(tx)
	}
}

// UnmarkIncluded returns transactions to the pending set after their
// containing block was abandoned in a reorg. Nonces are recomputed
// conservatively: the sender's next includable nonce drops back if the
// reverted tx sits below it.
func (p *Pool) UnmarkIncluded(txs []*types.Transaction) {
	for _, tx := range txs {
		if !p.included[tx.Hash] {
			continue
		}
		delete(p.included, tx.Hash)
		if p.nextOnce[tx.Sender] > tx.Nonce {
			p.nextOnce[tx.Sender] = tx.Nonce
		}
		p.Add(tx)
	}
}

// WasIncluded reports whether tx has been included in the miner's chain.
func (p *Pool) WasIncluded(h types.Hash) bool { return p.included[h] }

// NextNonce returns the next includable nonce for a sender.
func (p *Pool) NextNonce(a types.AccountID) uint64 { return p.nextOnce[a] }

func (p *Pool) removePending(tx *types.Transaction) {
	if _, ok := p.byHash[tx.Hash]; !ok {
		return
	}
	delete(p.byHash, tx.Hash)
	list := p.pending[tx.Sender]
	i := sort.Search(len(list), func(i int) bool { return list[i].Nonce >= tx.Nonce })
	if i < len(list) && list[i].Hash == tx.Hash {
		list = append(list[:i], list[i+1:]...)
		if len(list) == 0 {
			delete(p.pending, tx.Sender)
		} else {
			p.pending[tx.Sender] = list
		}
	}
}

// PendingOf returns the pending transactions of one sender in nonce
// order (diagnostics and tests).
func (p *Pool) PendingOf(a types.AccountID) []*types.Transaction {
	list := p.pending[a]
	out := make([]*types.Transaction, len(list))
	copy(out, list)
	return out
}
