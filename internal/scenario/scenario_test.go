package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ethmeasure/internal/catalog"
	"ethmeasure/internal/geo"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"churn", Spec{Name: "churn"}},
		{"partition:a=EA+SEA,start=5m", Spec{
			Name:   "partition",
			Params: map[string]string{"a": "EA+SEA", "start": "5m"},
		}},
		{" withhold : pool = Ethermine , depth = 3 ", Spec{
			Name:   "withhold",
			Params: map[string]string{"pool": "Ethermine", "depth": "3"},
		}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got.Name != c.want.Name || !reflect.DeepEqual(got.Params, c.want.Params) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// Canonical form reparses to the same spec.
		again, err := Parse(got.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", got.String(), err)
		}
		if again.String() != got.String() {
			t.Errorf("round trip changed %q to %q", got.String(), again.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{"", ":a=b", "partition:novalue", "partition:a=EA,a=WE"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestSpecStringSortsParams(t *testing.T) {
	s := Spec{Name: "x", Params: map[string]string{"b": "2", "a": "1"}}
	if got, want := s.String(), "x:a=1,b=2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRegistryRejectsUnknownScenario(t *testing.T) {
	if err := Validate(Spec{Name: "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRegistryRejectsUnknownParam(t *testing.T) {
	spec := Spec{Name: ChurnName, Params: map[string]string{"intreval": "2m"}}
	err := Validate(spec)
	if err == nil {
		t.Fatal("misspelled parameter accepted")
	}
	if !strings.Contains(err.Error(), "intreval") {
		t.Errorf("error %v does not name the bad key", err)
	}
}

func TestRegistryRejectsBadValues(t *testing.T) {
	bad := []string{
		"churn:interval=banana",
		"churn:interval=-2m",
		"withhold",                      // pool required
		"withhold:pool=X,depth=1",       // depth < 2
		"partition",                     // region set a required
		"partition:a=EA,b=EA",           // region on both sides
		"partition:a=Mars",              // unknown region
		"relayoverlay:hubs=0",           // hubs < 1
		"bandwidth",                     // regions required
		"bandwidth:regions=EA,factor=0", // factor must be positive
		"eclipse:attackers=0",
		"churnburst:count=0",
	}
	for _, raw := range bad {
		spec, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if err := Validate(spec); err == nil {
			t.Errorf("Validate(%q) accepted", raw)
		}
	}
}

func TestCatalogCoversAllPlugins(t *testing.T) {
	want := []string{
		BandwidthName, ChurnName, ChurnBurstName, EclipseName,
		PartitionName, RelayOverlayName, WithholdName,
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	for _, reg := range Catalog() {
		if reg.Desc == "" || reg.Usage == "" {
			t.Errorf("scenario %s lacks catalog description/usage", reg.Name)
		}
		if !strings.HasPrefix(reg.Usage, reg.Name) {
			t.Errorf("scenario %s usage %q does not start with its name", reg.Name, reg.Usage)
		}
	}
}

func TestDefaultsInstantiate(t *testing.T) {
	// Every scenario with defaults for all parameters must instantiate
	// bare; the ones with required parameters are covered above.
	for _, raw := range []string{
		"churn", "relayoverlay", "eclipse", "churnburst",
		"partition:a=EA", "bandwidth:regions=EA", "withhold:pool=X",
	} {
		spec, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		s, err := New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", raw, err)
		}
		if s.Name() != spec.Name {
			t.Errorf("instance name %q != spec name %q", s.Name(), spec.Name)
		}
	}
}

func TestParamsTypedGetters(t *testing.T) {
	p := catalog.NewParams("scenario", "t", map[string]string{
		"i": "7", "f": "0.5", "d": "90s", "r": "EA+NA", "one": "WE", "s": "x",
	})
	if got := p.Int("i", 0); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if got := p.Float("f", 0); got != 0.5 {
		t.Errorf("Float = %v", got)
	}
	if got := p.Dur("d", 0); got != 90*time.Second {
		t.Errorf("Dur = %v", got)
	}
	if got := p.Regions("r"); !reflect.DeepEqual(got, []geo.Region{geo.EasternAsia, geo.NorthAmerica}) {
		t.Errorf("Regions = %v", got)
	}
	if got := p.Region("one", 0); got != geo.WesternEurope {
		t.Errorf("Region = %v", got)
	}
	if got := p.Str("s", ""); got != "x" {
		t.Errorf("Str = %q", got)
	}
	if got := p.Int("missing", 42); got != 42 {
		t.Errorf("default = %d", got)
	}
	if err := p.Err(); err != nil {
		t.Errorf("Err() = %v", err)
	}
}

func TestTagsPreserveOrder(t *testing.T) {
	specs := []Spec{
		{Name: "relayoverlay"},
		{Name: "partition", Params: map[string]string{"a": "EA"}},
	}
	got := Tags(specs)
	want := []string{"relayoverlay", "partition:a=EA"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tags = %v, want %v", got, want)
	}
	if Tags(nil) != nil {
		t.Error("Tags(nil) != nil")
	}
}
