// Package scenario turns campaign conditions into composable plugins.
//
// The paper's core findings come from contrasting network conditions —
// geo-distribution, pool-gateway adjacency, withholding attacks — and
// the scenario space worth exploring is much wider: regional
// partitions, relay overlays (bloXroute-style), eclipse attacks,
// bandwidth degradation, churn bursts. Instead of hard-wiring each
// condition into core.Config flags and Campaign.build, every condition
// is a named, parameterised plugin registered here; core composes the
// configured list into the assembled campaign.
//
// A scenario instance may implement any combination of three hooks:
//
//   - TopologyMutator runs once after the network graph is built,
//     before the simulation starts (rewire, partition prep, add relay
//     or attacker nodes).
//   - MinerStrategy runs once after the mining subsystem is built and
//     attaches a mining.Strategy to a pool (withholding and friends).
//   - Intervention runs at simulation start and schedules timed events
//     on the engine (partition windows, bandwidth windows, churn).
//
// Determinism contract: scenarios must draw randomness only from the
// engine's named streams. Plugins converted from legacy config fields
// (churn, withhold) keep their historical stream names so existing
// campaigns stay bit-identical; new plugins use Env.RNG, which
// namespaces streams under "scenario/" so adding a scenario never
// perturbs the draws seen by the rest of the system.
package scenario

import (
	"math/rand"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/mining"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
)

// Scenario is one instantiated intervention. Implementations opt into
// hooks by additionally implementing TopologyMutator, MinerStrategy,
// Intervention and/or MetricsReporter.
type Scenario interface {
	// Name returns the registered scenario name ("partition", ...).
	Name() string
}

// TopologyMutator rewires the assembled network graph after
// construction and before the run: partitions, eclipse wiring, extra
// overlay nodes.
type TopologyMutator interface {
	Scenario
	MutateTopology(env *Env) error
}

// MinerStrategy attaches a pool-level mining strategy (see
// mining.Strategy) to the assembled mining subsystem.
type MinerStrategy interface {
	Scenario
	AttachStrategy(m *mining.Miner) error
}

// Intervention schedules timed events on the simulation engine when
// the run starts: partition windows, bandwidth degradation, churn.
type Intervention interface {
	Scenario
	Start(env *Env) error
}

// MetricsReporter exposes per-scenario headline scalars after the run
// (event counts, severed links, ...). Core prefixes each name with
// "scenario_<name>_" and merges them into the campaign's KeyMetrics,
// so sweeps aggregate them like any other metric.
type MetricsReporter interface {
	Scenario
	Metrics() map[string]float64
}

// Env is the assembled campaign substrate a scenario acts on. Core
// builds it once per campaign; all node slices are in deterministic
// construction order.
type Env struct {
	Engine   *sim.Engine
	Network  *simnet.Network
	Registry *chain.Registry
	P2P      *p2p.Config
	Miner    *mining.Miner

	// Regular are the plain (non-gateway, non-vantage) nodes.
	Regular []*p2p.Node
	// Gateways are the pool gateway nodes, per pool in spec order.
	Gateways [][]*p2p.Node
	// Vantages are the measurement nodes in config order.
	Vantages []*p2p.Node
	// Added are protocol nodes created by topology mutators (relay
	// hubs, attacker relays). Mutators MUST append every node they
	// create so later hooks — a partition severing cross-cut links, a
	// second mutator — see the full graph through AllNodes.
	Added []*p2p.Node

	// OutDegree is the campaign's regular-node dial count.
	OutDegree int
	// Duration is the virtual campaign length (the intervention horizon).
	Duration time.Duration
}

// RNG returns a deterministic random stream private to the named
// scenario. The "scenario/" namespace guarantees no collision with the
// simulator's own streams.
func (e *Env) RNG(name string) *rand.Rand {
	return e.Engine.RNG("scenario/" + name)
}

// AllNodes returns every protocol node — regular population, pool
// gateways, vantages, then mutator-added nodes — in deterministic
// construction order.
func (e *Env) AllNodes() []*p2p.Node {
	out := make([]*p2p.Node, 0, len(e.Regular)+len(e.Vantages)+len(e.Added)+8)
	out = append(out, e.Regular...)
	for _, gws := range e.Gateways {
		out = append(out, gws...)
	}
	out = append(out, e.Vantages...)
	return append(out, e.Added...)
}

// PoolGateways returns every pool gateway node, pools in spec order.
func (e *Env) PoolGateways() []*p2p.Node {
	var out []*p2p.Node
	for _, gws := range e.Gateways {
		out = append(out, gws...)
	}
	return out
}

// regionSet folds a region list into a membership set.
func regionSet(regions []geo.Region) map[geo.Region]bool {
	set := make(map[geo.Region]bool, len(regions))
	for _, r := range regions {
		set[r] = true
	}
	return set
}

// complementRegions returns every defined region not in set.
func complementRegions(set map[geo.Region]bool) []geo.Region {
	var out []geo.Region
	for _, r := range geo.AllRegions() {
		if !set[r] {
			out = append(out, r)
		}
	}
	return out
}

// nodeRegion returns the geographic region of a protocol node.
func nodeRegion(n *p2p.Node) geo.Region { return n.Endpoint().Region }
