package scenario

import (
	"fmt"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
)

// EclipseName addresses the targeted eclipse-attack scenario.
const EclipseName = "eclipse"

func init() {
	Register(Registration{
		Name:  EclipseName,
		Desc:  "monopolize a target node's peer slots with attacker relays",
		Usage: "eclipse[:node=N,attackers=2,region=EE,procspeed=3,uplinks=1]",
		New: func(p *Params) (Scenario, error) {
			s := &Eclipse{
				Target:    p.Int("node", -1),
				Attackers: p.Int("attackers", 2),
				Region:    p.Region("region", 0),
				ProcSpeed: p.Float("procspeed", 3.0),
				Uplinks:   p.Int("uplinks", 1),
			}
			if s.Target < -1 {
				return nil, fmt.Errorf("node index %d out of range", s.Target)
			}
			if s.Attackers < 1 {
				return nil, fmt.Errorf("need at least one attacker")
			}
			if s.ProcSpeed <= 0 {
				return nil, fmt.Errorf("procspeed must be positive")
			}
			if s.Uplinks < 1 {
				return nil, fmt.Errorf("attackers need at least one uplink")
			}
			return s, nil
		},
	})
}

// Eclipse models a classic eclipse attack (Heilman et al. / Marcus et
// al. for Ethereum): the victim's peer table is monopolized by
// attacker-controlled relays, so every block and transaction the
// victim sees first crosses attacker infrastructure. The victim's
// existing links are dropped and replaced by edges to freshly added
// attacker nodes; each attacker keeps Uplinks honest connections so
// the victim stays (slowly) synced rather than isolated. Attackers run
// deliberately slow relay hardware (ProcSpeed > 1), which is what
// delays the victim's view of the chain.
//
// Note the victim can regain honest peers only if other nodes dial it
// later (e.g. churn redials) — matching how real eclipses decay.
type Eclipse struct {
	// Target is the regular-node index to eclipse; -1 picks one at
	// random from the scenario's private RNG stream.
	Target int
	// Attackers is how many attacker relays surround the victim.
	Attackers int
	// Region places the attacker relays; 0 means the victim's region
	// (lowest-latency vantage for the attacker).
	Region geo.Region
	// ProcSpeed scales attacker processing delays (>1 = slow relaying,
	// the attack's lever on the victim's freshness).
	ProcSpeed float64
	// Uplinks is how many honest regular nodes each attacker dials.
	Uplinks int

	victim int
}

var (
	_ TopologyMutator = (*Eclipse)(nil)
	_ MetricsReporter = (*Eclipse)(nil)
)

// Name implements Scenario.
func (s *Eclipse) Name() string { return EclipseName }

// MutateTopology implements TopologyMutator: picks the victim, swaps
// its peer set for attacker relays, and wires the relays' uplinks.
func (s *Eclipse) MutateTopology(env *Env) error {
	rng := env.RNG(EclipseName)
	s.victim = s.Target
	if s.victim < 0 {
		s.victim = rng.Intn(len(env.Regular))
	}
	if s.victim >= len(env.Regular) {
		return fmt.Errorf("victim index %d out of range (have %d regular nodes)", s.victim, len(env.Regular))
	}
	victim := env.Regular[s.victim]
	region := s.Region
	if region == 0 {
		region = nodeRegion(victim)
	}

	// Honest candidates for attacker uplinks exclude the victim.
	honest := make([]*p2p.Node, 0, len(env.Regular)-1)
	for i, n := range env.Regular {
		if i != s.victim {
			honest = append(honest, n)
		}
	}

	victim.DisconnectAll()
	for i := 0; i < s.Attackers; i++ {
		endpoint, err := env.Network.AddNode(region, victim.Endpoint().Bandwidth)
		if err != nil {
			return err
		}
		attacker := p2p.NewNode(env.P2P, env.Network, endpoint, env.Registry)
		attacker.SetProcSpeed(s.ProcSpeed)
		env.Added = append(env.Added, attacker)
		p2p.Connect(victim, attacker)
		p2p.ConnectToRandom(rng, attacker, honest, s.Uplinks)
	}
	return nil
}

// Victim returns the index of the eclipsed regular node (diagnostics;
// valid after MutateTopology).
func (s *Eclipse) Victim() int { return s.victim }

// Metrics implements MetricsReporter.
func (s *Eclipse) Metrics() map[string]float64 {
	return map[string]float64{
		"victim":    float64(s.victim),
		"attackers": float64(s.Attackers),
	}
}
