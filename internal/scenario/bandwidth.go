package scenario

import (
	"fmt"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/simnet"
)

// BandwidthName addresses the regional bandwidth-degradation scenario.
const BandwidthName = "bandwidth"

func init() {
	Register(Registration{
		Name:  BandwidthName,
		Desc:  "throttle every node in a region set for a window",
		Usage: "bandwidth:regions=EA+SEA[,factor=0.1][,start=5m][,dur=10m]",
		New: func(p *Params) (Scenario, error) {
			s := &Bandwidth{
				Regions: p.Regions("regions"),
				Factor:  p.Float("factor", 0.1),
				At:      p.Dur("start", 0),
				Window:  p.Dur("dur", 0),
			}
			if err := p.Err(); err != nil {
				return nil, err
			}
			if len(s.Regions) == 0 {
				return nil, fmt.Errorf("regions parameter is required")
			}
			if s.Factor <= 0 {
				return nil, fmt.Errorf("factor must be positive")
			}
			if s.At < 0 || s.Window < 0 {
				return nil, fmt.Errorf("negative start or dur")
			}
			return s, nil
		},
	})
}

// Bandwidth models regional capacity degradation (backbone congestion,
// DDoS on local infrastructure): at At, the bandwidth of every node in
// the region set — regular, gateway and vantage endpoints alike — is
// multiplied by Factor; after Window the original values are restored
// (Window 0 keeps the throttle to the end of the run). Transfer times
// reflect the change immediately because the network samples endpoint
// bandwidth per message.
type Bandwidth struct {
	// Regions is the affected region set.
	Regions []geo.Region
	// Factor multiplies affected bandwidths (0.1 = 10x slower).
	Factor float64
	// At is when the throttle engages.
	At time.Duration
	// Window is how long it lasts; 0 keeps it to the end.
	Window time.Duration

	affected int
}

var (
	_ Intervention    = (*Bandwidth)(nil)
	_ MetricsReporter = (*Bandwidth)(nil)
)

// Name implements Scenario.
func (s *Bandwidth) Name() string { return BandwidthName }

// Start implements Intervention: schedules the throttle window.
func (s *Bandwidth) Start(env *Env) error {
	if s.At >= env.Duration {
		return nil
	}
	set := regionSet(s.Regions)
	env.Engine.After(s.At, func() {
		var throttled []*simnet.Node
		for _, node := range env.Network.Nodes() {
			if !set[node.Region] {
				continue
			}
			throttled = append(throttled, node)
			node.Bandwidth *= s.Factor
		}
		s.affected = len(throttled)
		if s.Window > 0 {
			env.Engine.After(s.Window, func() {
				// Restore by dividing out the factor rather than
				// writing back saved absolute values: overlapping
				// bandwidth windows (two composed scenarios throttling
				// the same region) then unwind independently in any
				// order instead of resurrecting stale snapshots.
				for _, node := range throttled {
					node.Bandwidth /= s.Factor
				}
			})
		}
	})
	return nil
}

// Metrics implements MetricsReporter.
func (s *Bandwidth) Metrics() map[string]float64 {
	return map[string]float64{"nodes_affected": float64(s.affected)}
}
