package scenario

import (
	"fmt"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
)

// RelayOverlayName addresses the low-latency relay-hub scenario.
const RelayOverlayName = "relayoverlay"

func init() {
	Register(Registration{
		Name:  RelayOverlayName,
		Desc:  "bloXroute-style low-latency hub peered to every pool gateway",
		Usage: "relayoverlay[:region=NA,hubs=1,peers=32,bw=2.5e9,procspeed=0.2]",
		New: func(p *Params) (Scenario, error) {
			s := &RelayOverlay{
				Region:    p.Region("region", geo.NorthAmerica),
				Hubs:      p.Int("hubs", 1),
				Peers:     p.Int("peers", 32),
				Bandwidth: p.Float("bw", 2.5e9), // 20 Gbit/s backbone
				ProcSpeed: p.Float("procspeed", 0.2),
			}
			if s.Hubs < 1 {
				return nil, fmt.Errorf("hubs must be at least 1")
			}
			if s.Peers < 0 {
				return nil, fmt.Errorf("negative peers")
			}
			if s.Bandwidth <= 0 || s.ProcSpeed <= 0 {
				return nil, fmt.Errorf("bandwidth and procspeed must be positive")
			}
			return s, nil
		},
	})
}

// RelayOverlay models a block-distribution-network hub (bloXroute BDN,
// Fibre-style relays): one or more high-bandwidth, fast-import nodes
// peered directly to every pool gateway plus a slice of the regular
// population. The hub speaks the ordinary wire protocol — its edge is
// purely physical (backbone bandwidth, fast hardware, pool adjacency),
// which is how the related work's relay overlays achieve their
// propagation advantage.
type RelayOverlay struct {
	// Region is where the hubs sit.
	Region geo.Region
	// Hubs is how many relay nodes to deploy.
	Hubs int
	// Peers is how many regular nodes each hub additionally dials.
	Peers int
	// Bandwidth is each hub's link speed in bytes/second.
	Bandwidth float64
	// ProcSpeed scales hub processing delays (<1 = faster than
	// baseline hardware).
	ProcSpeed float64

	links int
}

var (
	_ TopologyMutator = (*RelayOverlay)(nil)
	_ MetricsReporter = (*RelayOverlay)(nil)
)

// Name implements Scenario.
func (s *RelayOverlay) Name() string { return RelayOverlayName }

// MutateTopology implements TopologyMutator: adds the hub nodes and
// wires them to the pool gateways and the regular population.
func (s *RelayOverlay) MutateTopology(env *Env) error {
	rng := env.RNG(RelayOverlayName)
	gateways := env.PoolGateways()
	for i := 0; i < s.Hubs; i++ {
		endpoint, err := env.Network.AddNode(s.Region, s.Bandwidth)
		if err != nil {
			return err
		}
		hub := p2p.NewNode(env.P2P, env.Network, endpoint, env.Registry)
		hub.SetProcSpeed(s.ProcSpeed)
		env.Added = append(env.Added, hub)
		for _, gw := range gateways {
			p2p.Connect(hub, gw)
		}
		s.links += len(gateways)
		s.links += p2p.ConnectToRandom(rng, hub, env.Regular, s.Peers)
	}
	return nil
}

// Metrics implements MetricsReporter.
func (s *RelayOverlay) Metrics() map[string]float64 {
	return map[string]float64{
		"hubs":  float64(s.Hubs),
		"links": float64(s.links),
	}
}
