package scenario

import (
	"ethmeasure/internal/catalog"
)

// Registration describes one scenario kind in the catalog.
type Registration = catalog.Registration[Scenario]

// cat is the scenario catalog: the shared spec/params/registry
// machinery from internal/catalog, instantiated for the Scenario
// product type. Scenarios have no default name — an empty spec name is
// an error.
var cat = catalog.New[Scenario]("scenario", "scenario", "")

// Register adds a scenario kind to the catalog. Duplicate names panic:
// registration happens in init functions, so a collision is a
// programming error.
func Register(r Registration) {
	cat.Register(r)
}

// New instantiates one scenario from its spec: looks up the factory,
// runs it over the typed parameters, and rejects unknown or malformed
// parameters.
func New(spec Spec) (Scenario, error) {
	return cat.Build(spec)
}

// Build instantiates a spec list in order.
func Build(specs []Spec) ([]Scenario, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make([]Scenario, 0, len(specs))
	for _, spec := range specs {
		s, err := New(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Validate checks that a spec names a registered scenario and its
// parameters parse; the instance is discarded.
func Validate(spec Spec) error {
	return cat.Validate(spec)
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	return cat.Names()
}

// Catalog returns every registration sorted by name — the source of
// CLI -list-scenarios output.
func Catalog() []Registration {
	return cat.Registrations()
}
