package scenario

import (
	"fmt"
	"sort"
)

// Registration describes one scenario kind in the catalog.
type Registration struct {
	// Name is the spec name the scenario is addressed by.
	Name string
	// Desc is a one-line description for catalogs and help output.
	Desc string
	// Usage documents the textual spec form with optional parameters.
	Usage string
	// New instantiates the scenario from parsed parameters. Factories
	// read every parameter they accept through p's typed getters (the
	// registry rejects unconsumed keys) and validate values eagerly.
	New func(p *Params) (Scenario, error)
}

var registry = map[string]Registration{}

// Register adds a scenario kind to the catalog. Duplicate names panic:
// registration happens in init functions, so a collision is a
// programming error.
func Register(r Registration) {
	if r.Name == "" || r.New == nil {
		panic("scenario: registration needs a name and a factory")
	}
	if _, dup := registry[r.Name]; dup {
		panic("scenario: duplicate registration of " + r.Name)
	}
	registry[r.Name] = r
}

// New instantiates one scenario from its spec: looks up the factory,
// runs it over the typed parameters, and rejects unknown or malformed
// parameters.
func New(spec Spec) (Scenario, error) {
	reg, ok := registry[spec.Name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (known: %v)", spec.Name, Names())
	}
	p := newParams(spec.Name, spec.Params)
	s, err := reg.New(p)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Build instantiates a spec list in order.
func Build(specs []Spec) ([]Scenario, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make([]Scenario, 0, len(specs))
	for _, spec := range specs {
		s, err := New(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Validate checks that a spec names a registered scenario and its
// parameters parse; the instance is discarded.
func Validate(spec Spec) error {
	_, err := New(spec)
	return err
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Catalog returns every registration sorted by name — the source of
// CLI -list-scenarios output.
func Catalog() []Registration {
	out := make([]Registration, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}
