package scenario

import (
	"fmt"

	"ethmeasure/internal/mining"
)

// WithholdName addresses the selfish block-withholding scenario.
const WithholdName = "withhold"

func init() {
	Register(Registration{
		Name:  WithholdName,
		Desc:  "selfish block-withholding attack on one pool (Eyal-Sirer)",
		Usage: "withhold:pool=Ethermine[,depth=3]",
		New: func(p *Params) (Scenario, error) {
			w := &Withhold{
				Pool:  p.Str("pool", ""),
				Depth: p.Int("depth", 3),
			}
			if w.Pool == "" {
				return nil, fmt.Errorf("pool parameter is required")
			}
			if w.Depth < 2 {
				return nil, fmt.Errorf("depth %d < 2", w.Depth)
			}
			return w, nil
		},
	})
}

// Withhold attaches the selfish block-withholding strategy
// (mining.Withholding) to the named pool: the pool keeps its blocks
// private, extends its private chain, and publishes in a burst when
// the public chain threatens it or the lead reaches Depth. This plugin
// is the former hard-coded Config.WithholdingPool/WithholdDepth path.
type Withhold struct {
	// Pool names the attacking pool.
	Pool string
	// Depth is the private-chain length that forces a release.
	Depth int

	strategy *mining.Withholding
}

var (
	_ MinerStrategy   = (*Withhold)(nil)
	_ MetricsReporter = (*Withhold)(nil)
)

// Name implements Scenario.
func (w *Withhold) Name() string { return WithholdName }

// AttachStrategy implements MinerStrategy.
func (w *Withhold) AttachStrategy(m *mining.Miner) error {
	s, err := mining.NewWithholding(w.Depth)
	if err != nil {
		return err
	}
	if err := m.AttachStrategy(w.Pool, s); err != nil {
		return err
	}
	w.strategy = s
	return nil
}

// Metrics implements MetricsReporter: burst releases and blocks
// published through bursts.
func (w *Withhold) Metrics() map[string]float64 {
	if w.strategy == nil {
		return nil
	}
	return map[string]float64{
		"bursts":   float64(w.strategy.Bursts()),
		"released": float64(w.strategy.Released()),
	}
}
