package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ethmeasure/internal/geo"
)

// Spec names one scenario plus its parameters — the serializable,
// sweepable unit carried by core.Config.Scenarios. The textual form is
//
//	name[:key=val,key=val,...]
//
// e.g. "partition:a=EA+SEA,start=5m,dur=10m". Values must not contain
// commas; region lists join codes with '+'.
type Spec struct {
	// Name is the registered scenario name ("churn", "partition", ...).
	Name string
	// Params are the scenario's key=value parameters. Nil means all
	// defaults.
	Params map[string]string
}

// String renders the spec in canonical textual form (params sorted by
// key), the inverse of Parse.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// Parse reads a spec from its textual form "name[:key=val,...]". It
// validates syntax only; names and parameter values are checked by the
// registry when the scenario is instantiated.
func Parse(s string) (Spec, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Spec{}, fmt.Errorf("scenario: empty scenario name in %q", s)
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	spec.Params = make(map[string]string)
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return Spec{}, fmt.Errorf("scenario: %s: bad parameter %q (want key=val)", name, pair)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("scenario: %s: duplicate parameter %q", name, key)
		}
		spec.Params[key] = strings.TrimSpace(val)
	}
	return spec, nil
}

// Tags renders a spec list in canonical form, preserving order — the
// scenario annotation carried by results and log metadata.
func Tags(specs []Spec) []string {
	if len(specs) == 0 {
		return nil
	}
	tags := make([]string, len(specs))
	for i, s := range specs {
		tags[i] = s.String()
	}
	return tags
}

// Params is the typed accessor a scenario factory reads its Spec
// parameters through. Getters record the first conversion error and
// mark keys as consumed; the registry rejects specs with unknown
// (unconsumed) keys, so misspelled parameters fail fast instead of
// silently running the default.
type Params struct {
	scenario string
	raw      map[string]string
	used     map[string]bool
	err      error
}

func newParams(scenario string, raw map[string]string) *Params {
	return &Params{scenario: scenario, raw: raw, used: make(map[string]bool, len(raw))}
}

func (p *Params) lookup(key string) (string, bool) {
	p.used[key] = true
	v, ok := p.raw[key]
	return v, ok
}

func (p *Params) fail(key string, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("scenario %s: parameter %s: %w", p.scenario, key, err)
	}
}

// Str returns the string parameter key, or def when absent.
func (p *Params) Str(key, def string) string {
	if v, ok := p.lookup(key); ok {
		return v
	}
	return def
}

// Int returns the integer parameter key, or def when absent.
func (p *Params) Int(key string, def int) int {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return n
}

// Float returns the float parameter key, or def when absent.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return f
}

// Dur returns the duration parameter key ("5m", "30s"), or def when
// absent.
func (p *Params) Dur(key string, def time.Duration) time.Duration {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return d
}

// Regions returns the region-list parameter key ("EA+SEA", codes or
// full names joined by '+'), or nil when absent.
func (p *Params) Regions(key string) []geo.Region {
	v, ok := p.lookup(key)
	if !ok {
		return nil
	}
	parts := strings.Split(v, "+")
	out := make([]geo.Region, 0, len(parts))
	for _, part := range parts {
		r, err := geo.ParseRegion(strings.TrimSpace(part))
		if err != nil {
			p.fail(key, err)
			return nil
		}
		out = append(out, r)
	}
	return out
}

// Region returns a single-region parameter, or def when absent.
func (p *Params) Region(key string, def geo.Region) geo.Region {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	r, err := geo.ParseRegion(v)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return r
}

// Err returns the first conversion error, or an unknown-key error when
// the spec carried parameters no getter consumed.
func (p *Params) Err() error {
	if p.err != nil {
		return p.err
	}
	var unknown []string
	for k := range p.raw {
		if !p.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("scenario %s: unknown parameter(s) %s", p.scenario, strings.Join(unknown, ", "))
	}
	return nil
}
