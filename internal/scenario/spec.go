package scenario

import (
	"ethmeasure/internal/catalog"
)

// Spec names one scenario plus its parameters — the serializable,
// sweepable unit carried by core.Config.Scenarios. The textual form is
//
//	name[:key=val,key=val,...]
//
// e.g. "partition:a=EA+SEA,start=5m,dur=10m". Values must not contain
// commas; region lists join codes with '+'.
//
// Spec is the shared catalog spec (internal/catalog): the parsing,
// canonicalization and typed-parameter machinery is one implementation
// shared with the consensus-protocol catalog.
type Spec = catalog.Spec

// Params is the typed accessor a scenario factory reads its Spec
// parameters through. Getters record the first conversion error and
// mark keys as consumed; the registry rejects specs with unknown
// (unconsumed) keys, so misspelled parameters fail fast instead of
// silently running the default.
type Params = catalog.Params

// Parse reads a spec from its textual form "name[:key=val,...]". It
// validates syntax only; names and parameter values are checked by the
// registry when the scenario is instantiated.
func Parse(s string) (Spec, error) {
	return cat.Parse(s)
}

// Tags renders a spec list in canonical form, preserving order — the
// scenario annotation carried by results and log metadata.
func Tags(specs []Spec) []string {
	if len(specs) == 0 {
		return nil
	}
	tags := make([]string, len(specs))
	for i, s := range specs {
		tags[i] = s.String()
	}
	return tags
}
