package scenario

import (
	"fmt"
	"time"

	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
)

// ChurnBurstName addresses the correlated mass-restart scenario.
const ChurnBurstName = "churnburst"

func init() {
	Register(Registration{
		Name:  ChurnBurstName,
		Desc:  "restart many nodes at once (correlated outage / client bug)",
		Usage: "churnburst[:count=20,start=10m,downtime=1m,redial=N]",
		New: func(p *Params) (Scenario, error) {
			s := &ChurnBurst{
				Count:        p.Int("count", 20),
				At:           p.Dur("start", -1),
				DowntimeMean: p.Dur("downtime", time.Minute),
				RedialPeers:  p.Int("redial", 0),
			}
			if s.Count < 1 {
				return nil, fmt.Errorf("count must be at least 1")
			}
			if s.DowntimeMean < 0 || s.RedialPeers < 0 {
				return nil, fmt.Errorf("negative downtime or redial")
			}
			return s, nil
		},
	})
}

// ChurnBurst models a correlated outage — a buggy client release, a
// cloud-zone failure — by restarting Count random regular nodes at one
// instant instead of spreading restarts over the run the way the churn
// scenario does. Each victim drops all its connections and re-dials a
// fresh peer set after an exponentially distributed downtime.
type ChurnBurst struct {
	// Count is how many distinct regular nodes restart.
	Count int
	// At is when the burst fires; negative means mid-run.
	At time.Duration
	// DowntimeMean is the mean offline period before rejoining.
	DowntimeMean time.Duration
	// RedialPeers is how many peers a rejoining node dials (0 = the
	// campaign's OutDegree).
	RedialPeers int

	restarts int
}

var (
	_ Intervention    = (*ChurnBurst)(nil)
	_ MetricsReporter = (*ChurnBurst)(nil)
)

// Name implements Scenario.
func (s *ChurnBurst) Name() string { return ChurnBurstName }

// Start implements Intervention: schedules the burst.
func (s *ChurnBurst) Start(env *Env) error {
	at := s.At
	if at < 0 {
		at = env.Duration / 2
	}
	if at >= env.Duration {
		return nil
	}
	degree := env.OutDegree
	if s.RedialPeers > 0 {
		degree = s.RedialPeers
	}
	count := s.Count
	if count > len(env.Regular) {
		count = len(env.Regular)
	}
	env.Engine.After(at, func() {
		rng := env.RNG(ChurnBurstName)
		// Distinct victims via a partial Fisher-Yates over node indices.
		idx := rng.Perm(len(env.Regular))[:count]
		for _, i := range idx {
			node := env.Regular[i]
			node.DisconnectAll()
			s.restarts++
			downtime := sim.ExpDuration(rng, s.DowntimeMean)
			env.Engine.After(downtime, func() {
				p2p.ConnectToRandom(rng, node, env.Regular, degree)
			})
		}
	})
	return nil
}

// Metrics implements MetricsReporter.
func (s *ChurnBurst) Metrics() map[string]float64 {
	return map[string]float64{"restarts": float64(s.restarts)}
}
