package scenario

import (
	"fmt"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
)

// PartitionName addresses the regional network-partition scenario.
const PartitionName = "partition"

func init() {
	Register(Registration{
		Name:  PartitionName,
		Desc:  "sever all links between two region sets for a window",
		Usage: "partition:a=EA+SEA[,b=NA+WE][,start=5m][,dur=10m]",
		New: func(p *Params) (Scenario, error) {
			s := &Partition{
				A:      p.Regions("a"),
				B:      p.Regions("b"),
				At:     p.Dur("start", 0),
				Window: p.Dur("dur", 0),
			}
			if err := p.Err(); err != nil {
				return nil, err
			}
			if len(s.A) == 0 {
				return nil, fmt.Errorf("region set a is required")
			}
			if s.At < 0 || s.Window < 0 {
				return nil, fmt.Errorf("negative start or dur")
			}
			aSet := regionSet(s.A)
			if len(s.B) == 0 {
				s.B = complementRegions(aSet)
			}
			for _, r := range s.B {
				if aSet[r] {
					return nil, fmt.Errorf("region %s on both sides of the cut", r.Code())
				}
			}
			return s, nil
		},
	})
}

// Partition models a regional network split (submarine-cable cut,
// national-firewall event): at At, every link whose endpoints fall on
// opposite sides of the A/B cut is severed — regular nodes, pool
// gateways and vantages alike. After Window the exact severed links
// are re-established (Window 0 keeps the split until the end of the
// run).
//
// Links formed during the window (e.g. by churn redials) are not
// policed: a long-lasting real partition also leaks through relays
// eventually, and the windowed cut is what the reorg/fork analyses
// care about.
type Partition struct {
	// A and B are the two region sets of the cut. B empty at parse time
	// means the complement of A.
	A, B []geo.Region
	// At is when the cut happens.
	At time.Duration
	// Window is how long the cut lasts; 0 keeps it to the end.
	Window time.Duration

	severed int
	healed  bool
}

var (
	_ Intervention    = (*Partition)(nil)
	_ MetricsReporter = (*Partition)(nil)
)

// Name implements Scenario.
func (s *Partition) Name() string { return PartitionName }

// Start implements Intervention: schedules the cut and, when a window
// is configured, the heal.
func (s *Partition) Start(env *Env) error {
	if s.At >= env.Duration {
		return nil // window entirely outside the run
	}
	aSet, bSet := regionSet(s.A), regionSet(s.B)
	env.Engine.After(s.At, func() {
		cut := s.sever(env, aSet, bSet)
		s.severed = len(cut)
		if s.Window > 0 {
			env.Engine.After(s.Window, func() {
				for _, pair := range cut {
					p2p.Connect(pair[0], pair[1])
				}
				s.healed = true
			})
		}
	})
	return nil
}

// sever disconnects every edge crossing the cut and returns the severed
// pairs in deterministic order.
func (s *Partition) sever(env *Env, aSet, bSet map[geo.Region]bool) [][2]*p2p.Node {
	var cut [][2]*p2p.Node
	for _, node := range env.AllNodes() {
		if !aSet[nodeRegion(node)] {
			continue
		}
		for _, peer := range node.Peers() {
			if !bSet[nodeRegion(peer)] {
				continue
			}
			p2p.Disconnect(node, peer)
			cut = append(cut, [2]*p2p.Node{node, peer})
		}
	}
	return cut
}

// Metrics implements MetricsReporter.
func (s *Partition) Metrics() map[string]float64 {
	healed := 0.0
	if s.healed {
		healed = 1
	}
	return map[string]float64{
		"severed_links": float64(s.severed),
		"healed":        healed,
	}
}
