package scenario

import (
	"fmt"
	"time"

	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
)

// ChurnName addresses the node-turnover scenario.
const ChurnName = "churn"

// Default churn profile: one restart every two minutes with five-minute
// downtimes, roughly 12% of a 220-node population cycling per hour
// (mirrors core.DefaultChurnConfig).
const (
	defaultChurnInterval = 2 * time.Minute
	defaultChurnDowntime = 5 * time.Minute
)

func init() {
	Register(Registration{
		Name:  ChurnName,
		Desc:  "restart random regular nodes (Kim et al. IMC'18 turnover)",
		Usage: "churn[:interval=2m,downtime=5m,redial=N]",
		New: func(p *Params) (Scenario, error) {
			c := &Churn{
				Interval:     p.Dur("interval", defaultChurnInterval),
				DowntimeMean: p.Dur("downtime", defaultChurnDowntime),
				RedialPeers:  p.Int("redial", 0),
			}
			if c.Interval <= 0 {
				return nil, fmt.Errorf("interval must be positive")
			}
			if c.DowntimeMean < 0 || c.RedialPeers < 0 {
				return nil, fmt.Errorf("negative downtime or redial")
			}
			return c, nil
		},
	})
}

// Churn models node churn: public Ethereum deployments see constant
// peer turnover (Kim et al., IMC'18, measured short node sessions
// across the network). A churn event restarts one random regular node:
// all its connections drop, and after a downtime it re-dials a fresh
// random peer set — exactly what a relaunched Geth does. Vantages and
// pool gateways are long-lived and never churn.
//
// This plugin is the former core-internal churn driver; it draws from
// the historical "churn" RNG stream so campaigns configured through the
// legacy Config.Churn field remain bit-identical.
type Churn struct {
	// Interval is the mean time between churn events (exponentially
	// distributed).
	Interval time.Duration
	// DowntimeMean is the mean offline period before the node rejoins.
	DowntimeMean time.Duration
	// RedialPeers is how many peers a rejoining node dials (0 = the
	// campaign's OutDegree).
	RedialPeers int

	engine  *sim.Engine
	nodes   []*p2p.Node
	degree  int
	horizon sim.Time
	down    map[int]bool // node index -> currently offline
	events  int
}

var (
	_ Intervention    = (*Churn)(nil)
	_ MetricsReporter = (*Churn)(nil)
)

// Name implements Scenario.
func (c *Churn) Name() string { return ChurnName }

// Start schedules churn events over the regular population until the
// campaign horizon.
func (c *Churn) Start(env *Env) error {
	if c.Interval <= 0 {
		return nil
	}
	c.engine = env.Engine
	c.nodes = env.Regular
	c.degree = env.OutDegree
	if c.RedialPeers > 0 {
		c.degree = c.RedialPeers
	}
	c.horizon = env.Duration
	c.down = make(map[int]bool)
	c.scheduleNext()
	return nil
}

// Events returns how many restarts occurred.
func (c *Churn) Events() int { return c.events }

// Metrics implements MetricsReporter.
func (c *Churn) Metrics() map[string]float64 {
	return map[string]float64{"events": float64(c.events)}
}

func (c *Churn) scheduleNext() {
	rng := c.engine.RNG("churn")
	wait := sim.ExpDuration(rng, c.Interval)
	if c.engine.Now()+wait > c.horizon {
		return
	}
	c.engine.After(wait, func() {
		c.restartOne()
		c.scheduleNext()
	})
}

func (c *Churn) restartOne() {
	rng := c.engine.RNG("churn")
	// Pick an online node; give up after a few tries if most are down.
	for attempt := 0; attempt < 8; attempt++ {
		idx := rng.Intn(len(c.nodes))
		if c.down[idx] {
			continue
		}
		node := c.nodes[idx]
		node.DisconnectAll()
		c.down[idx] = true
		c.events++
		downtime := sim.ExpDuration(rng, c.DowntimeMean)
		c.engine.After(downtime, func() {
			c.down[idx] = false
			p2p.ConnectToRandom(rng, node, c.nodes, c.degree)
		})
		return
	}
}
