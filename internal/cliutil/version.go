package cliutil

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// VersionInfo is the build identity every cmd/ binary reports via its
// -version flag and the campaign server via GET /v1/version: the
// module version (or VCS revision) plus the toolchain, so a result
// file or a long-running daemon can always be traced back to the code
// that produced it.
type VersionInfo struct {
	// Version is the module version ("v1.2.3", "(devel)") or "unknown"
	// outside module builds.
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, when the
	// build recorded one; Dirty marks uncommitted local changes.
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Version reads the running binary's build identity.
func Version() VersionInfo {
	v := VersionInfo{Version: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if info.Main.Version != "" {
		v.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.modified":
			v.Dirty = s.Value == "true"
		}
	}
	return v
}

// VersionLine renders the one-line output of a -version flag.
func VersionLine(tool string) string {
	v := Version()
	line := fmt.Sprintf("%s %s (%s)", tool, v.Version, v.GoVersion)
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if v.Dirty {
			rev += "-dirty"
		}
		line = fmt.Sprintf("%s %s %s (%s)", tool, v.Version, rev, v.GoVersion)
	}
	return line
}
