// Package cliutil holds small flag helpers shared by the cmd/ tools.
package cliutil

import "strings"

// StringList collects every occurrence of a repeatable string flag
// (flag.Value).
type StringList []string

// String implements flag.Value. The comma separator round-trips: a
// value printed by String (flag defaults in -help, config echoes) can
// be fed back through Set without growing a stray "; " item.
func (m *StringList) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *StringList) Set(v string) error {
	*m = append(*m, v)
	return nil
}
