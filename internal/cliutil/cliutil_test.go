package cliutil

import "testing"

func TestStringListSetAccumulates(t *testing.T) {
	var l StringList
	for _, v := range []string{"a", "b", "c"} {
		if err := l.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	if len(l) != 3 || l[0] != "a" || l[1] != "b" || l[2] != "c" {
		t.Fatalf("list = %v", l)
	}
}

func TestStringListStringRoundTrips(t *testing.T) {
	var l StringList
	l.Set("x")
	l.Set("y")
	printed := l.String()
	if printed != "x,y" {
		t.Fatalf("String() = %q, want %q", printed, "x,y")
	}
	// Feeding the printed form back through Set must reproduce the
	// items under the comma convention the cmd/ tools use for specs.
	var round StringList
	round.Set(printed)
	if round.String() != printed {
		t.Fatalf("round-trip = %q, want %q", round.String(), printed)
	}
}

func TestStringListEmpty(t *testing.T) {
	var l StringList
	if got := l.String(); got != "" {
		t.Fatalf("empty String() = %q", got)
	}
}
