// Package hashset provides an open-addressed set of uint64 keys with
// linear probing, Fibonacci hashing and a bitset filter in front of
// the table (a clear bit proves absence, so hot negative lookups skip
// the probe entirely). The table starts small and doubles lazily, so
// an idle set costs a few hundred bytes regardless of its expected
// working size.
//
// The technique originated as the per-peer known-hash LRU cache in
// internal/p2p (where the eager Go maps it replaced dominated the heap
// at 5,000 nodes); it is extracted here so the measurement layer's
// first-observation filters can share it.
package hashset

import "math/bits"

// U64 is an unbounded open-addressed set of uint64 keys. Zero is a
// valid member, tracked out of band since 0 marks an empty table slot.
// The zero value is not ready to use; call New.
type U64 struct {
	table   []uint64 // open-addressed storage, 0 = empty slot
	mask    uint64
	shift   uint     // 64 - log2(len(table)), for Fibonacci hashing
	filter  []uint64 // bitset over home slots; clear bit => absent
	n       int      // non-zero keys stored
	hasZero bool
}

// New returns a set sized for roughly capacityHint keys. The hint only
// bounds the initial table; the set grows as needed.
func New(capacityHint int) *U64 {
	s := &U64{}
	size := 8
	for size < 2*capacityHint && size < 64 {
		size <<= 1
	}
	s.grow(size)
	return s
}

// grow rebuilds the table (and filter) at the given power-of-two size.
func (s *U64) grow(size int) {
	old := s.table
	s.table = make([]uint64, size)
	s.mask = uint64(size - 1)
	s.shift = 64 - uint(bits.TrailingZeros(uint(size)))
	s.filter = make([]uint64, (size+63)/64)
	for _, k := range old {
		if k != 0 {
			s.insert(k)
		}
	}
}

// home is the preferred slot of a key (Fibonacci hashing: issued
// hashes are sequential counters, so low bits alone would cluster).
func (s *U64) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> s.shift
}

// insert places k in the table and marks the filter. k must be
// non-zero and not present.
func (s *U64) insert(k uint64) {
	h := s.home(k)
	s.filter[h>>6] |= 1 << (h & 63)
	for i := h; ; i = (i + 1) & s.mask {
		if s.table[i] == 0 {
			s.table[i] = k
			return
		}
	}
}

// lookup reports whether k (non-zero) is present.
func (s *U64) lookup(k uint64) bool {
	h := s.home(k)
	if s.filter[h>>6]&(1<<(h&63)) == 0 {
		return false
	}
	for i := h; ; i = (i + 1) & s.mask {
		switch s.table[i] {
		case k:
			return true
		case 0:
			return false
		}
	}
}

// Add inserts k, reporting whether it was newly added. The table is
// kept at most half full so probe chains stay short.
func (s *U64) Add(k uint64) bool {
	if k == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	if s.lookup(k) {
		return false
	}
	if 2*(s.n+1) > len(s.table) {
		s.grow(2 * len(s.table))
	}
	s.insert(k)
	s.n++
	return true
}

// Has reports whether k is in the set.
func (s *U64) Has(k uint64) bool {
	if k == 0 {
		return s.hasZero
	}
	return s.lookup(k)
}

// Remove deletes k if present, reporting whether it was a member. It
// uses backward-shift compaction so probe chains stay dense without
// tombstones. Filter bits are left set; stale bits only cost a probe,
// never correctness.
func (s *U64) Remove(k uint64) bool {
	if k == 0 {
		if !s.hasZero {
			return false
		}
		s.hasZero = false
		return true
	}
	if !s.lookup(k) {
		return false
	}
	s.n--
	i := s.home(k)
	for s.table[i] != k {
		i = (i + 1) & s.mask
	}
	for {
		s.table[i] = 0
		j := i
		for {
			j = (j + 1) & s.mask
			cur := s.table[j]
			if cur == 0 {
				return true
			}
			// cur may shift back to i only if its home slot lies at or
			// before i along the probe path ending at j.
			if (j-s.home(cur))&s.mask >= (j-i)&s.mask {
				s.table[i] = cur
				i = j
				break
			}
		}
	}
}

// Clear removes every member while keeping the allocated table and
// filter, so a recycled set refills without reallocating. Table size
// only affects probe paths, never membership answers, so a cleared set
// is observationally identical to a freshly constructed one.
func (s *U64) Clear() {
	if s.n == 0 && !s.hasZero {
		// Already empty: every table slot is zero (Remove zeroes slots
		// as it compacts). Filter bits can be stale after Removes, but
		// a stale bit only costs a probe, never correctness — and the
		// skip makes double-Clear (scrub at reclaim, re-clear at reuse)
		// free.
		return
	}
	clear(s.table)
	clear(s.filter)
	s.n = 0
	s.hasZero = false
}

// Len returns the number of members.
func (s *U64) Len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}
