package hashset

import (
	"math/rand"
	"testing"
)

func TestAddHasRemove(t *testing.T) {
	s := New(4)
	for k := uint64(1); k <= 100; k++ {
		if !s.Add(k) {
			t.Fatalf("Add(%d) not new", k)
		}
		if s.Add(k) {
			t.Fatalf("Add(%d) added twice", k)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for k := uint64(1); k <= 100; k++ {
		if !s.Has(k) {
			t.Fatalf("Has(%d) = false", k)
		}
	}
	if s.Has(101) {
		t.Error("phantom member 101")
	}
	for k := uint64(1); k <= 50; k++ {
		if !s.Remove(k) {
			t.Fatalf("Remove(%d) = false", k)
		}
		if s.Remove(k) {
			t.Fatalf("Remove(%d) removed twice", k)
		}
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d after removals, want 50", s.Len())
	}
	for k := uint64(1); k <= 100; k++ {
		if s.Has(k) != (k > 50) {
			t.Fatalf("Has(%d) = %v after removals", k, s.Has(k))
		}
	}
}

func TestZeroKey(t *testing.T) {
	s := New(2)
	if s.Has(0) {
		t.Error("empty set claims zero")
	}
	if !s.Add(0) || s.Add(0) {
		t.Error("zero Add semantics broken")
	}
	if !s.Has(0) || s.Len() != 1 {
		t.Error("zero not stored")
	}
	if !s.Remove(0) || s.Remove(0) || s.Has(0) {
		t.Error("zero Remove semantics broken")
	}
}

// TestAgainstMap cross-checks against Go's map under a random
// add/remove workload, including sequential counter-like keys (the
// hash-issuer pattern that motivated Fibonacci hashing).
func TestAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(8)
	ref := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		var k uint64
		if rng.Intn(2) == 0 {
			k = uint64(rng.Intn(4000)) // sequential-ish
		} else {
			k = rng.Uint64()
		}
		switch rng.Intn(3) {
		case 0, 1:
			want := !ref[k]
			if got := s.Add(k); got != want {
				t.Fatalf("step %d: Add(%d) = %v, want %v", i, k, got, want)
			}
			ref[k] = true
		case 2:
			want := ref[k]
			if got := s.Remove(k); got != want {
				t.Fatalf("step %d: Remove(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, map has %d", s.Len(), len(ref))
	}
	for k := range ref {
		if !s.Has(k) {
			t.Fatalf("lost member %d", k)
		}
	}
}

func TestLazyGrowth(t *testing.T) {
	// A huge capacity hint must not preallocate a huge table.
	s := New(1 << 20)
	if len(s.table) > 64 {
		t.Fatalf("initial table %d slots; growth must be lazy", len(s.table))
	}
	for k := uint64(1); k <= 10000; k++ {
		s.Add(k)
	}
	// Invariant: at most half full.
	if 2*s.n > len(s.table) {
		t.Fatalf("table over half full: %d/%d", s.n, len(s.table))
	}
}

func BenchmarkAddHas(b *testing.B) {
	b.ReportAllocs()
	s := New(1 << 16)
	for i := 0; i < b.N; i++ {
		k := uint64(i)%65536 + 1
		s.Add(k)
		s.Has(k + 1)
	}
}
