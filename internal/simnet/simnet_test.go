package simnet

import (
	"testing"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
)

func newNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	engine := sim.NewEngine(1)
	return engine, New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
}

func TestAddNodeValidation(t *testing.T) {
	_, net := newNet(t)
	if _, err := net.AddNode(geo.NorthAmerica, 0); err == nil {
		t.Error("zero bandwidth must error")
	}
	if _, err := net.AddNode(geo.NorthAmerica, -5); err == nil {
		t.Error("negative bandwidth must error")
	}
	if _, err := net.AddNode(geo.Region(0), 1e6); err == nil {
		t.Error("invalid region must error")
	}
	n, err := net.AddNode(geo.EasternAsia, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 0 || n.Region != geo.EasternAsia {
		t.Errorf("node = %+v", n)
	}
	if net.NumNodes() != 1 || net.Node(0) != n {
		t.Error("node registry inconsistent")
	}
}

func TestTransferDelayComponents(t *testing.T) {
	_, net := newNet(t)
	net.MinOverhead = time.Millisecond
	fast, _ := net.AddNode(geo.NorthAmerica, 1e6) // 1 MB/s
	slow, _ := net.AddNode(geo.NorthAmerica, 1e3) // 1 kB/s

	// 1000 bytes at the slower endpoint's 1 kB/s = 1 s transmission.
	d := net.TransferDelay(fast, slow, 1000)
	want := 10*time.Millisecond + time.Second + time.Millisecond
	if d != want {
		t.Errorf("delay = %v, want %v", d, want)
	}
	// Size scales transmission.
	if d2 := net.TransferDelay(fast, slow, 2000); d2 <= d {
		t.Error("larger message should take longer")
	}
	// Between two fast nodes transmission is negligible.
	fast2, _ := net.AddNode(geo.NorthAmerica, 1e6)
	if d3 := net.TransferDelay(fast, fast2, 100); d3 > 12*time.Millisecond {
		t.Errorf("fast-fast delay = %v", d3)
	}
}

func TestSendDeliversAtComputedTime(t *testing.T) {
	engine, net := newNet(t)
	a, _ := net.AddNode(geo.NorthAmerica, 1e9)
	b, _ := net.AddNode(geo.NorthAmerica, 1e9)
	var deliveredAt sim.Time
	net.SendFunc(a, b, 100, func() { deliveredAt = engine.Now() })
	if _, err := engine.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if deliveredAt <= 0 {
		t.Fatal("message not delivered")
	}
	if deliveredAt < 10*time.Millisecond {
		t.Errorf("delivered before latency elapsed: %v", deliveredAt)
	}
	if net.Delivered() != 1 {
		t.Errorf("delivered count = %d", net.Delivered())
	}
}

func TestSendOrderingPreserved(t *testing.T) {
	engine, net := newNet(t)
	a, _ := net.AddNode(geo.NorthAmerica, 1e9)
	b, _ := net.AddNode(geo.NorthAmerica, 1e9)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		net.SendFunc(a, b, 10, func() { got = append(got, i) })
	}
	if _, err := engine.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// Equal-size messages on a zero-jitter network deliver in order.
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order %v", got)
		}
	}
}
