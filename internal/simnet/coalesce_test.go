package simnet

import (
	"fmt"
	"testing"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
)

// traceSink records the exact delivery sequence (receiver, kind, num,
// virtual time) so coalesced and uncoalesced runs can be compared
// delivery-for-delivery.
type traceSink struct {
	engine *sim.Engine
	name   string
	out    *[]string
}

func (s *traceSink) DeliverEnvelope(env Envelope) {
	*s.out = append(*s.out, fmt.Sprintf("%s k=%d n=%d at=%d", s.name, env.Kind, env.Num, s.engine.Now()))
}

// runCoalesceTrace drives the same send schedule with and without
// coalescing: senders fan out bursts to two receivers over a
// zero-jitter model, so same-instant ties are guaranteed.
func runCoalesceTrace(t *testing.T, coalesce bool) []string {
	t.Helper()
	engine := sim.NewEngine(7)
	net := New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	if coalesce {
		net.EnableCoalescing()
	}
	var nodes []*Node
	for i := 0; i < 6; i++ {
		ep, err := net.AddNode(geo.NorthAmerica, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, ep)
	}
	var trace []string
	sinkA := &traceSink{engine: engine, name: "A", out: &trace}
	sinkB := &traceSink{engine: engine, name: "B", out: &trace}
	num := uint64(0)
	for round := 0; round < 20; round++ {
		// Announce-flood shape: several senders hit the same receiver
		// in one instant, interleaved with sends to the other receiver.
		for s := 2; s < 6; s++ {
			num++
			net.Send(nodes[s], nodes[0], 600, sinkA, Envelope{Kind: 1, Num: num})
			if s%2 == 0 {
				num++
				net.Send(nodes[s], nodes[1], 600, sinkB, Envelope{Kind: 2, Num: num})
			}
		}
		if _, err := engine.Run(engine.Now() + 50*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return trace
}

// TestCoalesceSameInstantOrder proves the coalescing contract on a
// deliberately tie-heavy workload: per (destination, instant) the
// delivery sequence is exactly the send sequence, and the overall
// per-receiver stream is unchanged from the uncoalesced run.
func TestCoalesceSameInstantOrder(t *testing.T) {
	plain := runCoalesceTrace(t, false)
	coal := runCoalesceTrace(t, true)
	if len(plain) != len(coal) {
		t.Fatalf("delivery counts differ: plain %d, coalesced %d", len(plain), len(coal))
	}
	// Zero-jitter same-size sends to A and B from one burst land at the
	// same instant; cross-destination order within that instant is the
	// one ordering coalescing may legally permute. Compare each
	// receiver's subsequence, which must match exactly.
	filter := func(trace []string, prefix string) []string {
		var out []string
		for _, line := range trace {
			if line[0] == prefix[0] {
				out = append(out, line)
			}
		}
		return out
	}
	for _, recv := range []string{"A", "B"} {
		p, c := filter(plain, recv), filter(coal, recv)
		if len(p) != len(c) {
			t.Fatalf("receiver %s: %d vs %d deliveries", recv, len(p), len(c))
		}
		for i := range p {
			if p[i] != c[i] {
				t.Fatalf("receiver %s delivery %d differs:\nplain:     %s\ncoalesced: %s", recv, i, p[i], c[i])
			}
		}
	}
}

// TestCoalesceBitIdenticalUnderJitter checks the production-model
// claim behind the config switch: with continuous jitter, exact ties
// are measure-zero, so the full delivery trace — cross-destination
// interleaving included — is bit-identical with coalescing on or off.
func TestCoalesceBitIdenticalUnderJitter(t *testing.T) {
	run := func(coalesce bool) []string {
		engine := sim.NewEngine(11)
		net := New(engine, geo.SharedDefaultLatencyModel())
		if coalesce {
			net.EnableCoalescing()
		}
		var nodes []*Node
		regions := []geo.Region{geo.NorthAmerica, geo.EasternAsia, geo.WesternEurope, geo.CentralEurope}
		for i := 0; i < 8; i++ {
			ep, err := net.AddNode(regions[i%len(regions)], 12.5e6)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, ep)
		}
		var trace []string
		sinks := make([]*traceSink, len(nodes))
		for i := range sinks {
			sinks[i] = &traceSink{engine: engine, name: fmt.Sprintf("n%d", i), out: &trace}
		}
		num := uint64(0)
		for round := 0; round < 30; round++ {
			for s := range nodes {
				for d := range nodes {
					if d == s {
						continue
					}
					num++
					net.Send(nodes[s], nodes[d], 200+100*s, sinks[d], Envelope{Kind: int32(s), Num: num})
				}
			}
			if _, err := engine.Run(engine.Now() + time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return trace
	}
	plain, coal := run(false), run(true)
	if len(plain) != len(coal) {
		t.Fatalf("delivery counts differ: plain %d, coalesced %d", len(plain), len(coal))
	}
	for i := range plain {
		if plain[i] != coal[i] {
			t.Fatalf("delivery %d differs:\nplain:     %s\ncoalesced: %s", i, plain[i], coal[i])
		}
	}
}

// TestCoalesceZeroAllocs extends the steady-state delivery budget to
// the coalesced path: batches, their key map and the drain events must
// all recycle.
func TestCoalesceZeroAllocs(t *testing.T) {
	engine := sim.NewEngine(1)
	net := New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	net.EnableCoalescing()
	a, _ := net.AddNode(geo.NorthAmerica, 1e9)
	b, _ := net.AddNode(geo.NorthAmerica, 1e9)
	c, _ := net.AddNode(geo.NorthAmerica, 1e9)
	sink := &countingSink{}
	payload := &struct{ x int }{42}
	warm := func() {
		for i := 0; i < 16; i++ {
			net.Send(a, c, 100, sink, Envelope{Kind: 1, Data: payload, Num: uint64(i)})
			net.Send(b, c, 100, sink, Envelope{Kind: 1, Data: payload, Num: uint64(i)})
			net.Send(a, b, 100, sink, Envelope{Kind: 1, Data: payload, Num: uint64(i)})
		}
		if _, err := engine.Run(engine.Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 320; i++ {
		warm()
	}
	allocs := testing.AllocsPerRun(200, warm)
	if allocs != 0 {
		t.Fatalf("steady-state coalesced delivery allocated %.1f times per batch round, want 0", allocs)
	}
	if sink.delivered == 0 {
		t.Fatal("sink saw no deliveries")
	}
	if net.CoalescedBatches() == 0 {
		t.Fatal("no batches drained; coalescing never engaged")
	}
}

// TestCoalesceReset pins Reset's coalescing contract: state is cleared
// (coalescing off, undrained batch references released, counters
// zeroed) while the batch slab's backing arrays are kept.
func TestCoalesceReset(t *testing.T) {
	engine := sim.NewEngine(1)
	net := New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	net.EnableCoalescing()
	a, _ := net.AddNode(geo.NorthAmerica, 1e9)
	b, _ := net.AddNode(geo.NorthAmerica, 1e9)
	sink := &countingSink{}
	for i := 0; i < 8; i++ {
		net.Send(a, b, 100, sink, Envelope{Kind: 1, Num: uint64(i)})
	}
	// Leave the batch undrained: Reset must release its references.
	engine.Reset(2)
	net.Reset(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	if net.coalesce {
		t.Fatal("Reset left coalescing enabled")
	}
	if net.CoalescedBatches() != 0 {
		t.Fatal("Reset did not zero the batch counter")
	}
	if len(net.batchAt) != 0 {
		t.Fatal("Reset left keyed batches behind")
	}
	if len(net.freeBatches) != len(net.batches) {
		t.Fatalf("free list holds %d of %d batches after Reset", len(net.freeBatches), len(net.batches))
	}
	for i := range net.batches {
		envs := net.batches[i].envs[:cap(net.batches[i].envs)]
		for j := range envs {
			if envs[j].sink != nil || envs[j].env.Data != nil {
				t.Fatalf("batch %d slot %d still holds references after Reset", i, j)
			}
		}
	}
	// A recycled network must coalesce again after re-enabling.
	net.EnableCoalescing()
	a2, _ := net.AddNode(geo.NorthAmerica, 1e9)
	b2, _ := net.AddNode(geo.NorthAmerica, 1e9)
	for i := 0; i < 4; i++ {
		net.Send(a2, b2, 100, sink, Envelope{Kind: 2, Num: uint64(i)})
	}
	if _, err := engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if net.Delivered() != 4 || net.CoalescedBatches() != 1 {
		t.Fatalf("recycled network delivered %d in %d batches, want 4 in 1", net.Delivered(), net.CoalescedBatches())
	}
}
