// Package simnet provides the simulated network substrate: nodes with
// a geographic region and bandwidth, links between them, and message
// delivery with region-dependent latency, size-dependent transfer time
// and jitter. Protocol behaviour lives one layer up in internal/p2p.
//
// Delivery is allocation-free on the steady-state path: senders pass a
// reusable Envelope (a value, not a pointer) plus a Sink, the network
// packs both into the engine's closure-free event representation, and
// the envelope is reconstructed at receive time. Campaigns deliver
// tens of millions of messages, so this is the difference between a
// GC-bound and a CPU-bound run at 5,000 nodes.
//
// Delay jitter draws from a per-sender RNG stream (derived from the
// master seed and the sender's node ID), never from a shared stream:
// a node's delays are bit-identical no matter how concurrent sends
// interleave, which is what lets the sharded engine reproduce the
// serial engine's runs exactly.
package simnet

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/types"
)

// Node is a network endpoint.
type Node struct {
	ID        types.NodeID
	Region    geo.Region
	Bandwidth float64 // bytes per second
}

// Network owns all nodes and delivers messages between them on the
// simulation engine (serial, or sharded when EnableSharding was
// called).
type Network struct {
	engine  *sim.Engine
	latency *geo.LatencyModel
	nodes   []*Node

	// Per-sender jitter streams, parallel to nodes.
	senderRNG []*rand.Rand

	// Sharded-mode routing state: the coordinator, each node's shard
	// (parallel to nodes), and the caller's region→shard assignment.
	sharded *sim.Sharded
	pick    func(geo.Region) int
	shardOf []int32

	// MinOverhead is a fixed per-message processing cost added to every
	// delivery (kernel + serialization floor).
	MinOverhead time.Duration

	delivered atomic.Uint64

	// Delivery-coalescing state (EnableCoalescing): envelopes bound for
	// the same destination at the same virtual instant share one
	// scheduled drain event instead of one event each. Batches live in
	// a recycled slab; batchAt maps the (destination, instant) key to
	// the open batch.
	coalesce    bool
	batchAt     map[coalKey]int32
	batches     []coalBatch
	freeBatches []int32
	drainer     batchDrainer
	batchesRun  uint64

	// Warm-run spares: node structs and jitter streams harvested by
	// Reset, drawn again by AddNode so recycled networks rebuild their
	// endpoint tables without allocating.
	spareNodes []*Node
	spareRNG   []*rand.Rand
}

// coalKey identifies one coalesced delivery instant.
type coalKey struct {
	at  sim.Time
	dst types.NodeID
}

// pendingEnv is one delivery waiting in a batch.
type pendingEnv struct {
	sink Sink
	env  Envelope
}

// coalBatch collects the deliveries of one (destination, instant), in
// send order.
type coalBatch struct {
	at   sim.Time
	dst  types.NodeID
	envs []pendingEnv
}

// batchDrainer is the engine-facing handler for coalesced batches. It
// is a distinct type (not the Network itself, which handles single
// deliveries) so batch events need no sentinel in Arg.K and can never
// collide with protocol message kinds.
type batchDrainer struct{ n *Network }

func (b *batchDrainer) HandleSimEvent(arg sim.Arg) { b.n.drainBatch(int32(arg.U)) }

// New creates a network on the given engine with the given latency model.
func New(engine *sim.Engine, latency *geo.LatencyModel) *Network {
	return &Network{
		engine:      engine,
		latency:     latency,
		MinOverhead: 200 * time.Microsecond,
	}
}

// Reset returns the network to the state New(engine, latency) would
// produce, harvesting the node structs and per-sender RNG streams of
// the finished run for reuse by subsequent AddNode calls. Every Node
// field is reassigned and every recycled stream re-seeded on reuse, so
// a warm network is bit-identical to a cold one. The caller must not
// touch the previous run's nodes after Reset.
func (n *Network) Reset(engine *sim.Engine, latency *geo.LatencyModel) {
	n.engine = engine
	n.latency = latency
	n.spareNodes = append(n.spareNodes, n.nodes...)
	n.nodes = n.nodes[:0]
	n.spareRNG = append(n.spareRNG, n.senderRNG...)
	n.senderRNG = n.senderRNG[:0]
	n.sharded = nil
	n.pick = nil
	n.shardOf = n.shardOf[:0]
	n.MinOverhead = 200 * time.Microsecond
	n.delivered.Store(0)
	n.coalesce = false
	n.batchesRun = 0
	clear(n.batchAt)
	// Undrained batches (a campaign that ended at its horizon with
	// deliveries still in flight) hold sink and payload references;
	// release them over each slice's full capacity before reuse.
	for i := range n.batches {
		b := &n.batches[i]
		envs := b.envs[:cap(b.envs)]
		clear(envs)
		*b = coalBatch{envs: envs[:0]}
	}
	n.freeBatches = n.freeBatches[:0]
	for i := range n.batches {
		n.freeBatches = append(n.freeBatches, int32(i))
	}
}

// EnableSharding routes all traffic through the sharded coordinator:
// every node added afterwards is assigned to pick(region), same-shard
// deliveries stay on the shard's local heap, and cross-shard
// deliveries are exchanged at window barriers. Must be called before
// any node is added.
func (n *Network) EnableSharding(sharded *sim.Sharded, pick func(geo.Region) int) {
	if len(n.nodes) > 0 {
		panic("simnet: EnableSharding must be called before any AddNode")
	}
	n.sharded = sharded
	n.pick = pick
}

// Sharded returns the sharded coordinator, or nil in serial mode.
func (n *Network) Sharded() *sim.Sharded { return n.sharded }

// EnableCoalescing makes Send batch envelopes that land on the same
// destination at the same virtual instant through one scheduled drain
// event instead of one event each, cutting the engine's event count
// under announce floods and zero-jitter latency models. Within one
// (destination, instant) the envelopes are delivered in send order —
// exactly the uncoalesced order. Across destinations sharing an
// instant, delivery order follows each destination's first send
// rather than strict per-message seq order; with the default
// continuous-jitter latency models exact cross-node ties have measure
// zero, so production runs are unaffected, but the switch defaults to
// off (core.Config.CoalesceDelivery) until a campaign's model is
// known tie-free or tie-order-insensitive. Serial engine only:
// sharded-mode sends bypass coalescing.
func (n *Network) EnableCoalescing() {
	n.coalesce = true
	n.drainer.n = n
	if n.batchAt == nil {
		n.batchAt = make(map[coalKey]int32)
	}
}

// CoalescedBatches reports how many batch drain events have run —
// each replaced len(batch) single-delivery events with one.
func (n *Network) CoalescedBatches() uint64 { return n.batchesRun }

// AddNode registers a node in the given region with the given bandwidth
// (bytes/second). Bandwidth must be positive.
func (n *Network) AddNode(region geo.Region, bandwidth float64) (*Node, error) {
	if bandwidth <= 0 {
		return nil, fmt.Errorf("simnet: bandwidth must be positive, got %f", bandwidth)
	}
	if !region.Valid() {
		return nil, fmt.Errorf("simnet: invalid region %d", int(region))
	}
	id := types.NodeID(len(n.nodes))
	var node *Node
	if k := len(n.spareNodes); k > 0 {
		node = n.spareNodes[k-1]
		n.spareNodes = n.spareNodes[:k-1]
		node.ID, node.Region, node.Bandwidth = id, region, bandwidth
	} else {
		node = &Node{ID: id, Region: region, Bandwidth: bandwidth}
	}
	n.nodes = append(n.nodes, node)
	var rng *rand.Rand
	if k := len(n.spareRNG); k > 0 {
		rng = n.spareRNG[k-1]
		n.spareRNG = n.spareRNG[:k-1]
		sim.ReseedStream(rng, n.engine.Seed(), "simnet", uint64(id))
	} else {
		rng = sim.NewStream(n.engine.Seed(), "simnet", uint64(id))
	}
	n.senderRNG = append(n.senderRNG, rng)
	if n.sharded != nil {
		shard := n.pick(region)
		if shard < 0 || shard >= n.sharded.NumShards() {
			return nil, fmt.Errorf("simnet: shard %d for region %s out of range", shard, region)
		}
		n.shardOf = append(n.shardOf, int32(shard))
	}
	return node, nil
}

// Node returns the node with the given ID.
func (n *Network) Node(id types.NodeID) *Node {
	return n.nodes[int(id)]
}

// Nodes returns all nodes in creation order. The returned slice is
// shared; callers must not modify it.
func (n *Network) Nodes() []*Node { return n.nodes }

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Delivered returns the number of messages delivered so far.
func (n *Network) Delivered() uint64 { return n.delivered.Load() }

// SchedulerFor returns the scheduler that runs the given node's
// events: its shard in sharded mode, the serial engine otherwise.
// Protocol nodes schedule their timers here so local work stays on
// the local heap.
func (n *Network) SchedulerFor(node *Node) sim.Scheduler {
	if n.sharded == nil {
		return n.engine
	}
	return n.sharded.Shard(int(n.shardOf[node.ID]))
}

// ShardOf returns the shard index the node is assigned to (0 in
// serial mode).
func (n *Network) ShardOf(node *Node) int {
	if n.sharded == nil {
		return 0
	}
	return int(n.shardOf[node.ID])
}

// TransferDelay computes the one-way delay for a message of the given
// size between two nodes: propagation latency (region pair, jittered,
// drawn from the sender's stream) + transmission time at the slower
// endpoint + fixed overhead.
func (n *Network) TransferDelay(from, to *Node, size int) time.Duration {
	lat := n.latency.Sample(n.senderRNG[from.ID], from.Region, to.Region)
	bw := from.Bandwidth
	if to.Bandwidth < bw {
		bw = to.Bandwidth
	}
	transmit := time.Duration(float64(size) / bw * float64(time.Second))
	return lat + transmit + n.MinOverhead
}

// Envelope is the payload of one in-flight message. Kind discriminates
// the protocol message type (values are owned by the protocol layer);
// Data and Aux carry pointer-shaped payloads (block, transaction,
// link); Num carries a scalar (hash, height). Envelopes are passed by
// value: sending one does not allocate.
type Envelope struct {
	Kind int32
	Data any
	Aux  any
	Num  uint64
}

// Sink receives delivered envelopes. Protocol nodes implement it.
type Sink interface {
	DeliverEnvelope(env Envelope)
}

// Send schedules the delivery of an envelope of the given wire size
// from one node to another; sink.DeliverEnvelope(env) runs at the
// receive time. The steady-state path performs zero allocations.
func (n *Network) Send(from, to *Node, size int, sink Sink, env Envelope) {
	d := n.TransferDelay(from, to, size)
	if n.sharded == nil {
		if n.coalesce {
			n.sendCoalesced(to.ID, n.engine.Now()+d, sink, env)
			return
		}
		arg := sim.Arg{A: sink, B: env.Data, C: env.Aux, U: env.Num, K: env.Kind}
		n.engine.AfterArg(d, n, arg)
		return
	}
	arg := sim.Arg{A: sink, B: env.Data, C: env.Aux, U: env.Num, K: env.Kind}
	n.sharded.Route(int(n.shardOf[from.ID]), int(n.shardOf[to.ID]), d, n, arg)
}

// sendCoalesced appends the delivery to the open batch for its
// (destination, instant), creating and scheduling the batch on first
// use. Steady state allocates nothing: batches come from a recycled
// slab and the key map reuses its buckets.
func (n *Network) sendCoalesced(dst types.NodeID, at sim.Time, sink Sink, env Envelope) {
	key := coalKey{at: at, dst: dst}
	if bi, ok := n.batchAt[key]; ok {
		b := &n.batches[bi]
		b.envs = append(b.envs, pendingEnv{sink: sink, env: env})
		return
	}
	var bi int32
	if k := len(n.freeBatches); k > 0 {
		bi = n.freeBatches[k-1]
		n.freeBatches = n.freeBatches[:k-1]
	} else {
		n.batches = append(n.batches, coalBatch{})
		bi = int32(len(n.batches) - 1)
	}
	b := &n.batches[bi]
	b.at, b.dst = at, dst
	b.envs = append(b.envs, pendingEnv{sink: sink, env: env})
	n.batchAt[key] = bi
	n.engine.ScheduleArg(at, &n.drainer, sim.Arg{U: uint64(bi)})
}

// drainBatch delivers one batch's envelopes in send order. The batch
// is unkeyed before delivery, so a handler that triggers a zero-delay
// send back to the same (destination, instant) opens a fresh batch
// scheduled later in this same instant — matching where uncoalesced
// delivery events would have landed.
func (n *Network) drainBatch(bi int32) {
	b := &n.batches[bi]
	delete(n.batchAt, coalKey{at: b.at, dst: b.dst})
	n.batchesRun++
	envs := b.envs
	for i := range envs {
		n.delivered.Add(1)
		envs[i].sink.DeliverEnvelope(envs[i].env)
		envs[i] = pendingEnv{} // release references
	}
	// Re-index: delivery handlers may have sent messages and grown the
	// batch slab, moving the element b pointed at.
	n.batches[bi].envs = envs[:0]
	n.freeBatches = append(n.freeBatches, bi)
}

// HandleSimEvent is the engine-facing delivery trampoline: it counts
// the message and hands the reassembled envelope to the sink. Not for
// direct use.
func (n *Network) HandleSimEvent(arg sim.Arg) {
	n.delivered.Add(1)
	arg.A.(Sink).DeliverEnvelope(Envelope{Kind: arg.K, Data: arg.B, Aux: arg.C, Num: arg.U})
}

// SendFunc schedules a closure-based delivery. It allocates per
// message and exists for tests and low-rate callers; hot paths use
// Send.
func (n *Network) SendFunc(from, to *Node, size int, deliver func()) {
	d := n.TransferDelay(from, to, size)
	body := func() {
		n.delivered.Add(1)
		deliver()
	}
	if n.sharded == nil {
		n.engine.After(d, body)
		return
	}
	n.sharded.RouteFunc(int(n.shardOf[from.ID]), int(n.shardOf[to.ID]), d, body)
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Latency returns the latency model (read-only use).
func (n *Network) Latency() *geo.LatencyModel { return n.latency }
