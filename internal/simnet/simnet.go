// Package simnet provides the simulated network substrate: nodes with
// a geographic region and bandwidth, links between them, and message
// delivery with region-dependent latency, size-dependent transfer time
// and jitter. Protocol behaviour lives one layer up in internal/p2p.
//
// Delivery is allocation-free on the steady-state path: senders pass a
// reusable Envelope (a value, not a pointer) plus a Sink, the network
// packs both into the engine's closure-free event representation, and
// the envelope is reconstructed at receive time. Campaigns deliver
// tens of millions of messages, so this is the difference between a
// GC-bound and a CPU-bound run at 5,000 nodes.
//
// Delay jitter draws from a per-sender RNG stream (derived from the
// master seed and the sender's node ID), never from a shared stream:
// a node's delays are bit-identical no matter how concurrent sends
// interleave, which is what lets the sharded engine reproduce the
// serial engine's runs exactly.
package simnet

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/types"
)

// Node is a network endpoint.
type Node struct {
	ID        types.NodeID
	Region    geo.Region
	Bandwidth float64 // bytes per second
}

// Network owns all nodes and delivers messages between them on the
// simulation engine (serial, or sharded when EnableSharding was
// called).
type Network struct {
	engine  *sim.Engine
	latency *geo.LatencyModel
	nodes   []*Node

	// Per-sender jitter streams, parallel to nodes.
	senderRNG []*rand.Rand

	// Sharded-mode routing state: the coordinator, each node's shard
	// (parallel to nodes), and the caller's region→shard assignment.
	sharded *sim.Sharded
	pick    func(geo.Region) int
	shardOf []int32

	// MinOverhead is a fixed per-message processing cost added to every
	// delivery (kernel + serialization floor).
	MinOverhead time.Duration

	delivered atomic.Uint64

	// Warm-run spares: node structs and jitter streams harvested by
	// Reset, drawn again by AddNode so recycled networks rebuild their
	// endpoint tables without allocating.
	spareNodes []*Node
	spareRNG   []*rand.Rand
}

// New creates a network on the given engine with the given latency model.
func New(engine *sim.Engine, latency *geo.LatencyModel) *Network {
	return &Network{
		engine:      engine,
		latency:     latency,
		MinOverhead: 200 * time.Microsecond,
	}
}

// Reset returns the network to the state New(engine, latency) would
// produce, harvesting the node structs and per-sender RNG streams of
// the finished run for reuse by subsequent AddNode calls. Every Node
// field is reassigned and every recycled stream re-seeded on reuse, so
// a warm network is bit-identical to a cold one. The caller must not
// touch the previous run's nodes after Reset.
func (n *Network) Reset(engine *sim.Engine, latency *geo.LatencyModel) {
	n.engine = engine
	n.latency = latency
	n.spareNodes = append(n.spareNodes, n.nodes...)
	n.nodes = n.nodes[:0]
	n.spareRNG = append(n.spareRNG, n.senderRNG...)
	n.senderRNG = n.senderRNG[:0]
	n.sharded = nil
	n.pick = nil
	n.shardOf = n.shardOf[:0]
	n.MinOverhead = 200 * time.Microsecond
	n.delivered.Store(0)
}

// EnableSharding routes all traffic through the sharded coordinator:
// every node added afterwards is assigned to pick(region), same-shard
// deliveries stay on the shard's local heap, and cross-shard
// deliveries are exchanged at window barriers. Must be called before
// any node is added.
func (n *Network) EnableSharding(sharded *sim.Sharded, pick func(geo.Region) int) {
	if len(n.nodes) > 0 {
		panic("simnet: EnableSharding must be called before any AddNode")
	}
	n.sharded = sharded
	n.pick = pick
}

// Sharded returns the sharded coordinator, or nil in serial mode.
func (n *Network) Sharded() *sim.Sharded { return n.sharded }

// AddNode registers a node in the given region with the given bandwidth
// (bytes/second). Bandwidth must be positive.
func (n *Network) AddNode(region geo.Region, bandwidth float64) (*Node, error) {
	if bandwidth <= 0 {
		return nil, fmt.Errorf("simnet: bandwidth must be positive, got %f", bandwidth)
	}
	if !region.Valid() {
		return nil, fmt.Errorf("simnet: invalid region %d", int(region))
	}
	id := types.NodeID(len(n.nodes))
	var node *Node
	if k := len(n.spareNodes); k > 0 {
		node = n.spareNodes[k-1]
		n.spareNodes = n.spareNodes[:k-1]
		node.ID, node.Region, node.Bandwidth = id, region, bandwidth
	} else {
		node = &Node{ID: id, Region: region, Bandwidth: bandwidth}
	}
	n.nodes = append(n.nodes, node)
	var rng *rand.Rand
	if k := len(n.spareRNG); k > 0 {
		rng = n.spareRNG[k-1]
		n.spareRNG = n.spareRNG[:k-1]
		sim.ReseedStream(rng, n.engine.Seed(), "simnet", uint64(id))
	} else {
		rng = sim.NewStream(n.engine.Seed(), "simnet", uint64(id))
	}
	n.senderRNG = append(n.senderRNG, rng)
	if n.sharded != nil {
		shard := n.pick(region)
		if shard < 0 || shard >= n.sharded.NumShards() {
			return nil, fmt.Errorf("simnet: shard %d for region %s out of range", shard, region)
		}
		n.shardOf = append(n.shardOf, int32(shard))
	}
	return node, nil
}

// Node returns the node with the given ID.
func (n *Network) Node(id types.NodeID) *Node {
	return n.nodes[int(id)]
}

// Nodes returns all nodes in creation order. The returned slice is
// shared; callers must not modify it.
func (n *Network) Nodes() []*Node { return n.nodes }

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Delivered returns the number of messages delivered so far.
func (n *Network) Delivered() uint64 { return n.delivered.Load() }

// SchedulerFor returns the scheduler that runs the given node's
// events: its shard in sharded mode, the serial engine otherwise.
// Protocol nodes schedule their timers here so local work stays on
// the local heap.
func (n *Network) SchedulerFor(node *Node) sim.Scheduler {
	if n.sharded == nil {
		return n.engine
	}
	return n.sharded.Shard(int(n.shardOf[node.ID]))
}

// ShardOf returns the shard index the node is assigned to (0 in
// serial mode).
func (n *Network) ShardOf(node *Node) int {
	if n.sharded == nil {
		return 0
	}
	return int(n.shardOf[node.ID])
}

// TransferDelay computes the one-way delay for a message of the given
// size between two nodes: propagation latency (region pair, jittered,
// drawn from the sender's stream) + transmission time at the slower
// endpoint + fixed overhead.
func (n *Network) TransferDelay(from, to *Node, size int) time.Duration {
	lat := n.latency.Sample(n.senderRNG[from.ID], from.Region, to.Region)
	bw := from.Bandwidth
	if to.Bandwidth < bw {
		bw = to.Bandwidth
	}
	transmit := time.Duration(float64(size) / bw * float64(time.Second))
	return lat + transmit + n.MinOverhead
}

// Envelope is the payload of one in-flight message. Kind discriminates
// the protocol message type (values are owned by the protocol layer);
// Data and Aux carry pointer-shaped payloads (block, transaction,
// link); Num carries a scalar (hash, height). Envelopes are passed by
// value: sending one does not allocate.
type Envelope struct {
	Kind int32
	Data any
	Aux  any
	Num  uint64
}

// Sink receives delivered envelopes. Protocol nodes implement it.
type Sink interface {
	DeliverEnvelope(env Envelope)
}

// Send schedules the delivery of an envelope of the given wire size
// from one node to another; sink.DeliverEnvelope(env) runs at the
// receive time. The steady-state path performs zero allocations.
func (n *Network) Send(from, to *Node, size int, sink Sink, env Envelope) {
	d := n.TransferDelay(from, to, size)
	arg := sim.Arg{A: sink, B: env.Data, C: env.Aux, U: env.Num, K: env.Kind}
	if n.sharded == nil {
		n.engine.AfterArg(d, n, arg)
		return
	}
	n.sharded.Route(int(n.shardOf[from.ID]), int(n.shardOf[to.ID]), d, n, arg)
}

// HandleSimEvent is the engine-facing delivery trampoline: it counts
// the message and hands the reassembled envelope to the sink. Not for
// direct use.
func (n *Network) HandleSimEvent(arg sim.Arg) {
	n.delivered.Add(1)
	arg.A.(Sink).DeliverEnvelope(Envelope{Kind: arg.K, Data: arg.B, Aux: arg.C, Num: arg.U})
}

// SendFunc schedules a closure-based delivery. It allocates per
// message and exists for tests and low-rate callers; hot paths use
// Send.
func (n *Network) SendFunc(from, to *Node, size int, deliver func()) {
	d := n.TransferDelay(from, to, size)
	body := func() {
		n.delivered.Add(1)
		deliver()
	}
	if n.sharded == nil {
		n.engine.After(d, body)
		return
	}
	n.sharded.RouteFunc(int(n.shardOf[from.ID]), int(n.shardOf[to.ID]), d, body)
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Latency returns the latency model (read-only use).
func (n *Network) Latency() *geo.LatencyModel { return n.latency }
