package simnet

import (
	"testing"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
)

// countingSink records envelope deliveries without allocating.
type countingSink struct {
	delivered int
	lastKind  int32
	lastNum   uint64
}

func (s *countingSink) DeliverEnvelope(env Envelope) {
	s.delivered++
	s.lastKind = env.Kind
	s.lastNum = env.Num
}

// TestSendZeroAllocsPerDelivery pins the network's steady-state
// contract: scheduling and delivering envelopes allocates nothing once
// the engine slab is warm. This is the per-message budget that lets
// 5,000-node campaigns stream tens of millions of deliveries without
// GC pauses.
func TestSendZeroAllocsPerDelivery(t *testing.T) {
	engine := sim.NewEngine(1)
	net := New(engine, geo.DefaultLatencyModel())
	a, err := net.AddNode(geo.NorthAmerica, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(geo.EasternAsia, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{}
	payload := &struct{ x int }{42}

	warm := func() {
		for i := 0; i < 32; i++ {
			net.Send(a, b, 100, sink, Envelope{Kind: 1, Data: payload, Num: uint64(i)})
		}
		if _, err := engine.Run(engine.Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	// One round warms the slab; the loop also warms all 256 of the
	// ladder queue's ring buckets, which grow on first touch (each
	// round lands on different slot residues as virtual time advances).
	for i := 0; i < 320; i++ {
		warm()
	}

	allocs := testing.AllocsPerRun(200, warm)
	if allocs != 0 {
		t.Fatalf("steady-state delivery allocated %.1f times per 32-message batch, want 0", allocs)
	}
	if sink.delivered == 0 || sink.lastKind != 1 {
		t.Fatalf("sink saw %d deliveries, last kind %d", sink.delivered, sink.lastKind)
	}
}

// TestSendEnvelopeRoundTrip checks the envelope survives the packed
// event representation intact.
func TestSendEnvelopeRoundTrip(t *testing.T) {
	engine := sim.NewEngine(1)
	net := New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	a, _ := net.AddNode(geo.NorthAmerica, 1e9)
	b, _ := net.AddNode(geo.NorthAmerica, 1e9)
	type blob struct{ v int }
	data, aux := &blob{1}, &blob{2}
	var got Envelope
	sink := sinkFunc(func(env Envelope) { got = env })
	net.Send(a, b, 100, sink, Envelope{Kind: 7, Data: data, Aux: aux, Num: 99})
	if _, err := engine.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got.Kind != 7 || got.Data != data || got.Aux != aux || got.Num != 99 {
		t.Fatalf("envelope mangled in flight: %+v", got)
	}
	if net.Delivered() != 1 {
		t.Fatalf("delivered = %d, want 1", net.Delivered())
	}
}

type sinkFunc func(Envelope)

func (f sinkFunc) DeliverEnvelope(env Envelope) { f(env) }
