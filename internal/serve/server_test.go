package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	m := openManager(t, t.TempDir(), Options{MaxJobs: 1})
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	return ts, m
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) Job {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Errorf("Location = %q", loc)
	}
	return job
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func TestHTTPSubmitStatusAndStream(t *testing.T) {
	ts, _ := newTestServer(t)

	job := postJob(t, ts, quickSpec())
	if job.State != StateQueued {
		t.Errorf("submitted state = %s", job.State)
	}

	// Stream until terminal; every line is a whole Job snapshot.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var last Job
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if lines == 0 {
		t.Fatal("stream produced no snapshots")
	}
	if last.State != StateDone {
		t.Errorf("final streamed state = %s (error %q)", last.State, last.Error)
	}
	if len(last.Metrics) == 0 || last.Fingerprints == nil {
		t.Error("final snapshot missing metrics or fingerprints")
	}

	// Status endpoint agrees.
	var got Job
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: status %d", resp.StatusCode)
	}
	if got.State != StateDone {
		t.Errorf("status state = %s", got.State)
	}

	// List contains it.
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Errorf("list = %+v", list.Jobs)
	}
}

func TestHTTPCancel(t *testing.T) {
	ts, m := newTestServer(t)

	long := slowSpec()
	long.Duration = "12h"
	job := postJob(t, ts, long)
	waitJob(t, m, job.ID, time.Minute, isState(StateRunning))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	final := waitJob(t, m, job.ID, time.Minute, func(j Job) bool { return terminal(j.State) })
	if final.State != StateCancelled {
		t.Errorf("state after cancel = %s", final.State)
	}

	// A second cancel conflicts.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE: status %d, want 409", resp.StatusCode)
	}
}

func TestHTTPValidationAndNotFound(t *testing.T) {
	ts, _ := newTestServer(t)

	bad := []string{
		`{"kind":"banana"}`,
		`{"kind":"campaign","sweep":{}}`,
		`{"kind":"campaign","protocol":"pow2"}`,
		`{"kind":"campaign","scenarios":["mayhem"]}`,
		`{"kind":"campaign","duration":"fast"}`,
		`{"kind":"campaign","bogus_field":1}`, // unknown fields rejected
		`{invalid json`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Errorf("%s: error body not JSON: %v", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", body)
		}
	}

	for _, url := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/stream"} {
		if resp := getJSON(t, ts.URL+url, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPCatalogVersionHealthz(t *testing.T) {
	ts, _ := newTestServer(t)

	var cat struct {
		Scenarios []catalogEntry `json:"scenarios"`
		Protocols []catalogEntry `json:"protocols"`
	}
	getJSON(t, ts.URL+"/v1/catalog", &cat)
	if len(cat.Scenarios) == 0 || len(cat.Protocols) == 0 {
		t.Errorf("catalog = %d scenarios, %d protocols", len(cat.Scenarios), len(cat.Protocols))
	}
	names := make(map[string]bool)
	for _, p := range cat.Protocols {
		names[p.Name] = true
	}
	if !names["ethereum"] {
		t.Errorf("catalog protocols missing ethereum: %v", cat.Protocols)
	}

	var ver struct {
		GoVersion string `json:"go_version"`
	}
	getJSON(t, ts.URL+"/v1/version", &ver)
	if ver.GoVersion == "" {
		t.Error("version response missing go_version")
	}

	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/v1/healthz", &health); resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, health.Status)
	}
}

func TestHTTPStreamObservesProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a multi-second campaign; covered by the CI race job")
	}
	ts, _ := newTestServer(t)

	job := postJob(t, ts, slowSpec())
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// A job slow enough to checkpoint must stream at least one
	// intermediate snapshot with live progress before the terminal one.
	sawProgress := false
	var last Job
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
		if !terminal(last.State) && last.Progress != nil && last.Progress.SimTime > 0 {
			sawProgress = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.State != StateDone {
		t.Fatalf("final state = %s (error %q)", last.State, last.Error)
	}
	if !sawProgress {
		t.Error("stream never showed intermediate progress")
	}
	if last.Checkpoint == nil {
		t.Error("final snapshot has no checkpoint")
	}
	if last.Progress == nil || last.Progress.SimTime != last.Progress.Duration {
		t.Errorf("final progress = %+v", last.Progress)
	}
}
