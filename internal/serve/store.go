package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/core"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/sweep"
)

// store is the server's on-disk job state, one directory per job:
//
//	<dir>/jobs/<id>/job.json        — the Job snapshot
//	<dir>/jobs/<id>/checkpoint.json — latest campaign checkpoint
//	<dir>/jobs/<id>/runs.json       — completed sweep runs
//
// Everything is written atomically (temp file + rename), so a SIGKILL
// at any instant leaves each file either absent or complete — the
// invariant the kill-and-restore path depends on.
type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) jobDir(id string) string { return filepath.Join(st.dir, "jobs", id) }

// writeJSON atomically writes v as indented JSON to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: marshal %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// saveJob persists the job snapshot.
func (st *store) saveJob(j *Job) error {
	dir := st.jobDir(j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}
	return writeJSON(filepath.Join(dir, "job.json"), j)
}

// loadJobs reads every persisted job, sorted by ID (IDs are zero-padded
// sequence numbers, so lexical order is submission order).
func (st *store) loadJobs() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var j Job
		if err := readJSON(filepath.Join(st.jobDir(e.Name()), "job.json"), &j); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // directory created but job.json never landed
			}
			return nil, fmt.Errorf("serve: load job %s: %w", e.Name(), err)
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, nil
}

// nextID returns the next zero-padded job ID after every persisted one.
func (st *store) nextID() (string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		if n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "j")); err == nil && n > max {
			max = n
		}
	}
	return fmt.Sprintf("j%06d", max+1), nil
}

// saveCheckpoint persists a campaign job's latest checkpoint.
func (st *store) saveCheckpoint(id string, ck logs.Checkpoint) error {
	return logs.WriteCheckpointFile(filepath.Join(st.jobDir(id), "checkpoint.json"), ck)
}

// loadCheckpoint returns the job's last checkpoint, or nil when none
// was ever written.
func (st *store) loadCheckpoint(id string) (*logs.Checkpoint, error) {
	ck, err := logs.ReadCheckpointFile(filepath.Join(st.jobDir(id), "checkpoint.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	return &ck, nil
}

// persistedRun is the resumable essence of one completed sweep run:
// enough to fill its result slot and feed aggregation without
// re-executing the campaign.
type persistedRun struct {
	Index   int                 `json:"index"`
	Metrics analysis.KeyMetrics `json:"metrics"`
	Stats   core.RunStats       `json:"stats"`
}

// saveRuns persists a sweep job's completed runs.
func (st *store) saveRuns(id string, runs []persistedRun) error {
	return writeJSON(filepath.Join(st.jobDir(id), "runs.json"), runs)
}

// loadRuns returns a sweep job's completed runs as the Runner's
// Completed map, or nil when none were persisted.
func (st *store) loadRuns(id string) (map[int]sweep.RunResult, error) {
	var runs []persistedRun
	if err := readJSON(filepath.Join(st.jobDir(id), "runs.json"), &runs); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	completed := make(map[int]sweep.RunResult, len(runs))
	for _, r := range runs {
		completed[r.Index] = sweep.RunResult{
			Run:     sweep.Run{Index: r.Index},
			Metrics: r.Metrics,
			Stats:   r.Stats,
		}
	}
	return completed, nil
}
