package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ethmeasure/internal/core"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/sweep"
)

// Options configures a Manager.
type Options struct {
	// Dir is the data directory jobs persist under.
	Dir string
	// MaxJobs bounds how many jobs run concurrently; the rest queue.
	// <= 0 means 2.
	MaxJobs int
	// SweepWorkers is the per-sweep campaign concurrency (the sweep
	// runner's worker pool). <= 0 means GOMAXPROCS. Note the global
	// budget is MaxJobs × SweepWorkers campaigns: servers expecting
	// concurrent sweep jobs should divide capacity accordingly.
	SweepWorkers int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// how a running job was asked to stop, recorded before cancelling its
// context so the worker can map the resulting error to the right final
// state.
const (
	stopNone  = ""
	stopUser  = "cancel" // DELETE /v1/jobs/{id}: job → cancelled
	stopDrain = "drain"  // Close: job → queued, resumes on next start
)

// jobState is the manager's mutable record of one job.
type jobState struct {
	job      Job
	cancel   context.CancelFunc // non-nil while running
	stop     string             // why cancel was invoked (stop* above)
	watchers map[chan struct{}]struct{}
}

// Manager owns the job table, the on-disk store and the worker pool.
// It is the whole campaign server minus HTTP: Submit/Get/Cancel/Watch
// are exactly the endpoint semantics, so tests drive the lifecycle
// directly and the HTTP layer stays a translation.
type Manager struct {
	st   *store
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // signals workers: queue non-empty or closing
	jobs    map[string]*jobState
	order   []string // job IDs in submission order
	queue   []string // queued job IDs, FIFO
	closing bool
	killed  bool
	wg      sync.WaitGroup
}

// Open loads persisted jobs from opts.Dir and starts the worker pool.
// Jobs that were queued or running when the previous process died are
// requeued; previously running ones are marked resumed and will pick
// up from their last checkpoint (campaigns) or completed runs
// (sweeps).
func Open(opts Options) (*Manager, error) {
	st, err := newStore(opts.Dir)
	if err != nil {
		return nil, err
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 2
	}
	m := &Manager{
		st:   st,
		opts: opts,
		jobs: make(map[string]*jobState),
	}
	m.cond = sync.NewCond(&m.mu)

	jobs, err := st.loadJobs()
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if j.State == StateRunning {
			// The previous process died mid-run: requeue; the worker
			// resumes from the persisted checkpoint.
			j.State = StateQueued
			j.Resumed++
			j.Progress = nil
			if err := st.saveJob(j); err != nil {
				return nil, err
			}
		}
		js := &jobState{job: *j, watchers: make(map[chan struct{}]struct{})}
		m.jobs[j.ID] = js
		m.order = append(m.order, j.ID)
		if j.State == StateQueued {
			m.queue = append(m.queue, j.ID)
		}
	}

	for i := 0; i < opts.MaxJobs; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.logf("serve: opened %s: %d jobs loaded, %d queued", opts.Dir, len(jobs), len(m.queue))
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// Submit validates and enqueues a job, returning its initial snapshot.
func (m *Manager) Submit(spec JobSpec) (Job, error) {
	if err := spec.Normalize(); err != nil {
		return Job{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return Job{}, fmt.Errorf("serve: server is shutting down")
	}
	id, err := m.st.nextID()
	if err != nil {
		return Job{}, err
	}
	js := &jobState{
		job: Job{
			ID:      id,
			Spec:    spec,
			State:   StateQueued,
			Created: time.Now(),
		},
		watchers: make(map[chan struct{}]struct{}),
	}
	if err := m.st.saveJob(&js.job); err != nil {
		return Job{}, err
	}
	m.jobs[id] = js
	m.order = append(m.order, id)
	m.queue = append(m.queue, id)
	m.cond.Signal()
	m.logf("serve: job %s submitted (%s)", id, spec.Kind)
	return snapshot(js), nil
}

// Get returns a job's current snapshot.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return snapshot(js), true
}

// List returns every job in submission order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, snapshot(m.jobs[id]))
	}
	return out
}

// Cancel stops a queued or running job. Queued jobs transition
// immediately; running ones stop at the simulation's next safe point
// and transition when the worker observes the stop.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("serve: unknown job %s", id)
	}
	switch js.job.State {
	case StateQueued:
		js.job.State = StateCancelled
		now := time.Now()
		js.job.Ended = &now
		m.persistLocked(js)
		m.notifyLocked(js)
	case StateRunning:
		if js.stop == stopNone {
			js.stop = stopUser
			js.cancel()
		}
	default:
		return snapshot(js), fmt.Errorf("serve: job %s already %s", id, js.job.State)
	}
	return snapshot(js), nil
}

// Watch registers a wake channel for a job: it receives (capacity-1,
// coalesced) signals whenever the job's snapshot changes. Callers
// re-read the snapshot via Get on each wake and must call stop when
// done.
func (m *Manager) Watch(id string) (wake <-chan struct{}, stop func(), err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown job %s", id)
	}
	ch := make(chan struct{}, 1)
	js.watchers[ch] = struct{}{}
	return ch, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(js.watchers, ch)
	}, nil
}

// Close drains the server: running jobs are stopped at their next safe
// point and requeued (their checkpoints make the next start a resume,
// not a restart), queued jobs stay queued, and the worker pool exits.
// The store is left exactly as a subsequent Open expects it.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closing = true
	for _, js := range m.jobs {
		if js.job.State == StateRunning && js.stop == stopNone {
			js.stop = stopDrain
			js.cancel()
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	m.logf("serve: drained")
}

// Kill is the crash-test hook: it stops everything like Close but
// persists no state transitions, so the store looks exactly as if the
// process had been SIGKILLed mid-run. Only tests use it.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closing = true
	m.killed = true
	for _, js := range m.jobs {
		if js.cancel != nil {
			js.cancel()
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// snapshot copies a job for handing outside the lock. Pointer fields
// (Progress, Checkpoint) are replaced wholesale on update, never
// mutated, so sharing them is safe; the growing SweepRuns slice is
// cloned.
func snapshot(js *jobState) Job {
	j := js.job
	if len(j.SweepRuns) > 0 {
		j.SweepRuns = append([]SweepRun(nil), j.SweepRuns...)
	}
	return j
}

// persistLocked writes the job snapshot unless the manager is
// simulating a crash.
func (m *Manager) persistLocked(js *jobState) {
	if m.killed {
		return
	}
	if err := m.st.saveJob(&js.job); err != nil {
		m.logf("serve: persist job %s: %v", js.job.ID, err)
	}
}

// notifyLocked wakes every watcher (coalescing: a watcher that has not
// drained its previous wake gets nothing new, and re-reads anyway).
func (m *Manager) notifyLocked(js *jobState) {
	for ch := range js.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// worker is one slot of the job pool: claim the next queued job, run
// it to a final (or requeued) state, repeat until the manager closes.
// Each worker owns a warm-run pool that recycles campaign state across
// the sequential jobs it serves; pools are never shared between
// workers, so concurrent jobs stay fully isolated.
func (m *Manager) worker() {
	defer m.wg.Done()
	pool := core.NewPool()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for !m.closing && len(m.queue) == 0 {
			m.cond.Wait()
		}
		if m.closing {
			return
		}
		id := m.queue[0]
		m.queue = m.queue[1:]
		js := m.jobs[id]
		if js.job.State != StateQueued {
			continue // cancelled while waiting in the queue
		}
		ctx, cancel := context.WithCancel(context.Background())
		js.cancel = cancel
		js.stop = stopNone
		js.job.State = StateRunning
		if js.job.Started == nil {
			now := time.Now()
			js.job.Started = &now
		}
		if js.job.Spec.Kind == "sweep" {
			// OnResult re-reports restored runs, so rebuild from zero —
			// requeued jobs would otherwise double their entries.
			js.job.SweepRuns = nil
		}
		m.persistLocked(js)
		m.notifyLocked(js)
		m.mu.Unlock()

		err := m.runJob(ctx, js, pool)

		m.mu.Lock()
		cancel()
		js.cancel = nil
		m.finishLocked(js, err)
	}
}

// finishLocked maps a finished run's error to the job's next state.
func (m *Manager) finishLocked(js *jobState, err error) {
	if m.killed {
		return // simulated crash: the store keeps the mid-run state
	}
	now := time.Now()
	switch {
	case err == nil:
		js.job.State = StateDone
		js.job.Ended = &now
		m.logf("serve: job %s done", js.job.ID)
	case js.stop == stopDrain:
		js.job.State = StateQueued
		js.job.Resumed++
		js.job.Progress = nil
		m.logf("serve: job %s requeued for resume", js.job.ID)
	case js.stop == stopUser || errors.Is(err, context.Canceled):
		js.job.State = StateCancelled
		js.job.Ended = &now
		m.logf("serve: job %s cancelled", js.job.ID)
	default:
		js.job.State = StateFailed
		js.job.Error = err.Error()
		js.job.Ended = &now
		m.logf("serve: job %s failed: %v", js.job.ID, err)
	}
	m.persistLocked(js)
	m.notifyLocked(js)
}

// runJob executes one job outside the manager lock. Campaign jobs draw
// on the worker's warm-run pool; sweep jobs spin up their own
// worker-local pools inside the sweep runner.
func (m *Manager) runJob(ctx context.Context, js *jobState, pool *core.Pool) error {
	m.mu.Lock()
	spec := js.job.Spec
	id := js.job.ID
	m.mu.Unlock()
	if spec.Kind == "sweep" {
		return m.runSweep(ctx, js, id, spec)
	}
	return m.runCampaign(ctx, js, id, spec, pool)
}

// progressInterval spaces ~100 progress ticks across the run, clamped
// to at least a virtual second.
func progressInterval(duration time.Duration) time.Duration {
	iv := duration / 100
	if iv < time.Second {
		iv = time.Second
	}
	return iv
}

func (m *Manager) runCampaign(ctx context.Context, js *jobState, id string, spec JobSpec, pool *core.Pool) error {
	cfg, err := spec.config()
	if err != nil {
		return err
	}
	campaign, err := pool.NewCampaign(cfg)
	if err != nil {
		return err
	}
	resume, err := m.st.loadCheckpoint(id)
	if err != nil {
		return err
	}
	if resume != nil {
		m.logf("serve: job %s resuming from checkpoint at %v", id, time.Duration(resume.SimTimeNs))
	}
	opts := core.RunOptions{
		ProgressInterval: progressInterval(cfg.Duration),
		Progress: func(p core.Progress) {
			m.mu.Lock()
			js.job.Progress = &p
			m.notifyLocked(js)
			m.mu.Unlock()
		},
		CheckpointInterval: spec.checkpointInterval(),
		Checkpoint: func(ck logs.Checkpoint) {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.killed {
				return
			}
			if err := m.st.saveCheckpoint(id, ck); err != nil {
				m.logf("serve: job %s checkpoint: %v", id, err)
				return
			}
			js.job.Checkpoint = &ck
			m.notifyLocked(js)
		},
		Resume: resume,
	}
	res, err := campaign.RunContext(ctx, opts)
	if err != nil {
		return err
	}
	record, chain := campaign.Fingerprints()
	m.mu.Lock()
	js.job.Metrics = res.KeyMetrics()
	js.job.Fingerprints = &Fingerprints{Record: record, Chain: chain}
	m.mu.Unlock()
	// Everything the job publishes (metrics map, fingerprint strings)
	// has been extracted; the results bundle dies here, so the
	// campaign's state can feed the worker's next job. Cancelled and
	// failed runs return above without recycling — their state was
	// detached from the pool at build, so the next job simply builds
	// cold.
	pool.Recycle(campaign)
	return nil
}

func (m *Manager) runSweep(ctx context.Context, js *jobState, id string, spec JobSpec) error {
	matrix, err := spec.matrix()
	if err != nil {
		return err
	}
	completed, err := m.st.loadRuns(id)
	if err != nil {
		return err
	}
	if len(completed) > 0 {
		m.logf("serve: job %s resuming with %d completed runs", id, len(completed))
	}
	var persisted []persistedRun
	runner := &sweep.Runner{
		Workers:   m.opts.SweepWorkers,
		Completed: completed,
		OnResult: func(done, total int, r *sweep.RunResult) {
			_, restored := completed[r.Run.Index]
			sr := SweepRun{
				Index:    r.Run.Index,
				Scenario: r.Run.Scenario,
				Seed:     r.Run.Seed,
				Metrics:  r.Metrics,
				Wall:     r.Wall,
				Restored: restored,
			}
			if r.Err != nil {
				sr.Error = r.Err.Error()
			}
			m.mu.Lock()
			defer m.mu.Unlock()
			js.job.SweepRuns = append(js.job.SweepRuns, sr)
			js.job.Progress = &core.Progress{
				SimTime:  time.Duration(done),
				Duration: time.Duration(total),
			}
			if r.Ok() && !m.killed {
				persisted = append(persisted, persistedRun{
					Index:   r.Run.Index,
					Metrics: r.Metrics,
					Stats:   r.Stats,
				})
				if err := m.st.saveRuns(id, persisted); err != nil {
					m.logf("serve: job %s persist runs: %v", id, err)
				}
			}
			m.notifyLocked(js)
		},
	}
	results, err := runner.Run(ctx, matrix)
	if err != nil {
		return err
	}
	agg := sweep.Aggregate(results)
	m.mu.Lock()
	js.job.Aggregate = agg
	m.mu.Unlock()
	return nil
}
