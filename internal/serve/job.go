// Package serve implements the campaign server: a long-running daemon
// that accepts campaign and sweep jobs over HTTP/JSON, multiplexes
// them over a bounded worker pool, streams live progress, and survives
// being killed — in-flight campaigns checkpoint at simulation barriers
// and resume from the last checkpoint on restart (verified replay, see
// internal/core RunOptions.Resume), while sweeps resume at completed-
// run granularity.
//
// The package splits into the job model (this file), the on-disk store
// (store.go), the manager owning the worker pool and job lifecycle
// (manager.go), and the HTTP layer (server.go). The HTTP layer holds
// no state of its own: every handler is a thin translation onto the
// manager, so the lifecycle is fully testable without a socket.
package serve

import (
	"fmt"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/core"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/scenario"
	"ethmeasure/internal/sweep"
)

// Job states. A job moves queued → running → done/failed/cancelled; a
// server restart moves interrupted running jobs back to queued (with
// their checkpoint, so the re-run resumes rather than restarts).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a job state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobSpec is the client-submitted description of one job — the body of
// POST /v1/jobs. All fields beyond Kind are optional; durations use Go
// syntax ("30m", "2h"). Normalize pins the machine-dependent knobs
// (shard count, checkpoint interval) into the spec at submit time, so
// a job resumed on restart replays under identical parameters.
type JobSpec struct {
	// Kind selects the job type: "campaign" (one run) or "sweep" (a
	// run matrix with aggregation).
	Kind string `json:"kind"`
	// Preset is the base configuration: "quick" (default), "default"
	// or "paper".
	Preset string `json:"preset,omitempty"`
	// Seed overrides the preset's RNG seed (sweeps: the base seed).
	Seed int64 `json:"seed,omitempty"`
	// Duration overrides the virtual campaign length.
	Duration string `json:"duration,omitempty"`
	// Nodes overrides the regular node count.
	Nodes int `json:"nodes,omitempty"`
	// NoTx disables the transaction workload.
	NoTx bool `json:"no_tx,omitempty"`
	// Shards is the event-engine shard count. Zero lets the server pin
	// the machine's resolved default at submit time.
	Shards int `json:"shards,omitempty"`
	// Protocol is a consensus spec ("ethereum", "bitcoin",
	// "ghost-inclusive:depth=10"). Empty means the default protocol.
	Protocol string `json:"protocol,omitempty"`
	// Scenarios are scenario specs composed into the run
	// ("churn:rate=2", "partition:a=EA,start=5m,dur=10m").
	Scenarios []string `json:"scenarios,omitempty"`
	// CheckpointInterval is the virtual-time spacing of campaign
	// checkpoints. Zero lets the server pin a default derived from the
	// duration at submit time. Ignored for sweeps (they checkpoint at
	// run granularity).
	CheckpointInterval string `json:"checkpoint_interval,omitempty"`
	// Sweep configures the run matrix; required when Kind is "sweep",
	// rejected otherwise.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// SweepSpec is the matrix part of a sweep job: the base configuration
// above, swept across seeds and the listed axes.
type SweepSpec struct {
	// Seeds is the per-variant repetition count (≥ 1). Zero means 1.
	Seeds int `json:"seeds,omitempty"`
	// Nodes sweeps the regular node count.
	Nodes []int `json:"nodes,omitempty"`
	// Protocols sweeps consensus specs.
	Protocols []string `json:"protocols,omitempty"`
	// Scenarios sweeps scenario specs (one variant per entry, plus the
	// implicit base variant is NOT added — list "base" axes yourself
	// via an empty-scenario run if needed).
	Scenarios []string `json:"scenarios,omitempty"`
}

// SweepRun is the streamed per-run record of a sweep job: pushed to
// watchers as each run completes — the incremental metrics feed.
type SweepRun struct {
	Index    int                 `json:"index"`
	Scenario string              `json:"scenario"`
	Seed     int64               `json:"seed"`
	Error    string              `json:"error,omitempty"`
	Metrics  analysis.KeyMetrics `json:"metrics,omitempty"`
	Wall     time.Duration       `json:"wall,omitempty"`
	Restored bool                `json:"restored,omitempty"`
}

// Fingerprints are a finished campaign's identity: the running hash
// over every measurement record and the hash of the final block
// registry (see internal/logs).
type Fingerprints struct {
	Record string `json:"record"`
	Chain  string `json:"chain"`
}

// Job is one submitted job's full visible state: returned by the
// status endpoint and streamed (as whole snapshots) by the stream
// endpoint. The manager mutates it under lock and hands out copies.
type Job struct {
	ID      string    `json:"id"`
	Spec    JobSpec   `json:"spec"`
	State   string    `json:"state"`
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	// Started and Ended are nil until the transition happens.
	Started *time.Time `json:"started,omitempty"`
	Ended   *time.Time `json:"ended,omitempty"`
	// Resumed counts how many times the job was restored from a
	// checkpoint after a server restart or drain.
	Resumed int `json:"resumed,omitempty"`

	// Progress is the latest live snapshot of a running campaign (or
	// of a sweep, where SimTime/Duration are run counts scaled into
	// the virtual horizon).
	Progress *core.Progress `json:"progress,omitempty"`
	// Checkpoint is the latest campaign checkpoint.
	Checkpoint *logs.Checkpoint `json:"checkpoint,omitempty"`

	// Metrics are a finished campaign's headline scalars.
	Metrics analysis.KeyMetrics `json:"metrics,omitempty"`
	// Fingerprints identify a finished campaign's full record stream
	// and final chain — the values the kill-and-restore contract is
	// verified against (a resumed job must reproduce them exactly).
	Fingerprints *Fingerprints `json:"fingerprints,omitempty"`
	// SweepRuns accumulate as a sweep's runs finish (matrix expansion
	// order is not guaranteed; Index identifies the run).
	SweepRuns []SweepRun `json:"sweep_runs,omitempty"`
	// Aggregate is a finished sweep's cross-run aggregation.
	Aggregate *sweep.AggregateResult `json:"aggregate,omitempty"`
}

// Normalize validates the spec against the shared catalogs and pins
// every machine- or time-dependent default into it, mutating it in
// place. After Normalize, the spec is a complete, portable description:
// building it on any replica of this server yields the identical
// simulation, which is what checkpoint resume relies on.
func (s *JobSpec) Normalize() error {
	switch s.Kind {
	case "campaign":
		if s.Sweep != nil {
			return fmt.Errorf("serve: campaign job must not carry a sweep block")
		}
	case "sweep":
		if s.Sweep == nil {
			s.Sweep = &SweepSpec{}
		}
		if s.Sweep.Seeds < 0 {
			return fmt.Errorf("serve: sweep.seeds must be >= 0")
		}
		if s.Sweep.Seeds == 0 {
			s.Sweep.Seeds = 1
		}
	case "":
		return fmt.Errorf("serve: job kind required (campaign or sweep)")
	default:
		return fmt.Errorf("serve: unknown job kind %q (campaign or sweep)", s.Kind)
	}

	// Validate every spec against the shared catalogs up front, so a
	// bad submission is a 400 at the API instead of a failed job.
	if s.Protocol != "" {
		spec, err := consensus.Parse(s.Protocol)
		if err != nil {
			return err
		}
		if err := consensus.Validate(spec); err != nil {
			return err
		}
	}
	for _, raw := range s.Scenarios {
		spec, err := scenario.Parse(raw)
		if err != nil {
			return err
		}
		if err := scenario.Validate(spec); err != nil {
			return err
		}
	}
	if s.Sweep != nil {
		for _, raw := range s.Sweep.Protocols {
			spec, err := consensus.Parse(raw)
			if err != nil {
				return err
			}
			if err := consensus.Validate(spec); err != nil {
				return err
			}
		}
		for _, raw := range s.Sweep.Scenarios {
			spec, err := scenario.Parse(raw)
			if err != nil {
				return err
			}
			if err := scenario.Validate(spec); err != nil {
				return err
			}
		}
	}

	cfg, err := s.config()
	if err != nil {
		return err
	}
	// Pin the shard count: auto-resolution depends on GOMAXPROCS, and
	// a resumed replay must shard identically to the original run.
	if s.Shards == 0 {
		s.Shards = cfg.ResolveShards()
	}
	// Pin the checkpoint interval the same way: it determines where
	// the verification barriers sit on the timeline.
	if s.Kind == "campaign" && s.CheckpointInterval == "" {
		s.CheckpointInterval = defaultCheckpointInterval(cfg.Duration).String()
	}
	if s.CheckpointInterval != "" {
		d, err := time.ParseDuration(s.CheckpointInterval)
		if err != nil {
			return fmt.Errorf("serve: checkpoint_interval: %w", err)
		}
		if d <= 0 || d > cfg.Duration {
			return fmt.Errorf("serve: checkpoint_interval %v outside (0, %v]", d, cfg.Duration)
		}
	}
	// Re-derive the config with the pinned values to surface any
	// remaining validation error at submit time.
	if _, err := s.config(); err != nil {
		return err
	}
	return nil
}

// defaultCheckpointInterval spaces ~8 checkpoints across the run,
// clamped to at least a virtual second.
func defaultCheckpointInterval(duration time.Duration) time.Duration {
	iv := duration / 8
	if iv < time.Second {
		iv = time.Second
	}
	return iv
}

// checkpointInterval returns the pinned interval (Normalize guarantees
// it parses).
func (s *JobSpec) checkpointInterval() time.Duration {
	d, _ := time.ParseDuration(s.CheckpointInterval)
	return d
}

// config builds the campaign configuration (sweeps: the matrix base).
func (s *JobSpec) config() (core.Config, error) {
	var cfg core.Config
	switch s.Preset {
	case "", "quick":
		cfg = core.QuickConfig()
	case "default":
		cfg = core.DefaultConfig()
	case "paper":
		cfg = core.PaperScaleConfig()
	default:
		return cfg, fmt.Errorf("serve: unknown preset %q (quick, default or paper)", s.Preset)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.Duration != "" {
		d, err := time.ParseDuration(s.Duration)
		if err != nil {
			return cfg, fmt.Errorf("serve: duration: %w", err)
		}
		if d <= 0 {
			return cfg, fmt.Errorf("serve: duration must be positive")
		}
		cfg.Duration = d
	}
	if s.Nodes > 0 {
		cfg.NumNodes = s.Nodes
		core.ApplyCapacity(&cfg)
	}
	if s.NoTx {
		cfg.EnableTxWorkload = false
	}
	if s.Shards != 0 {
		cfg.Shards = s.Shards
	}
	if s.Protocol != "" {
		spec, err := consensus.Parse(s.Protocol)
		if err != nil {
			return cfg, err
		}
		cfg.Protocol = spec
	}
	if len(s.Scenarios) > 0 {
		cfg.Scenarios = nil
		for _, raw := range s.Scenarios {
			spec, err := scenario.Parse(raw)
			if err != nil {
				return cfg, err
			}
			cfg.Scenarios = append(cfg.Scenarios, spec)
		}
	}
	// Server jobs stream records through the analysis collector and
	// report KeyMetrics; retaining raw records or spilling to a shared
	// file would only grow the daemon's footprint. The streaming path
	// is bit-identical to the batch path (core equivalence suite), so
	// results are unchanged.
	cfg.RetainRecords = false
	cfg.SpillPath = ""
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// matrix expands a sweep job's spec into the run matrix.
func (s *JobSpec) matrix() (*sweep.Matrix, error) {
	cfg, err := s.config()
	if err != nil {
		return nil, err
	}
	m := &sweep.Matrix{Base: cfg, Seeds: sweep.Seeds(cfg.Seed, s.Sweep.Seeds)}
	if len(s.Sweep.Nodes) > 0 {
		m.Axes = append(m.Axes, sweep.Nodes(s.Sweep.Nodes...))
	}
	if len(s.Sweep.Protocols) > 0 {
		ax, err := sweep.Protocols(s.Sweep.Protocols...)
		if err != nil {
			return nil, err
		}
		m.Axes = append(m.Axes, ax)
	}
	if len(s.Sweep.Scenarios) > 0 {
		ax, err := sweep.Scenarios(s.Sweep.Scenarios...)
		if err != nil {
			return nil, err
		}
		m.Axes = append(m.Axes, ax)
	}
	return m, nil
}
