package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ethmeasure/internal/cliutil"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/scenario"
)

// Server is the HTTP face of a Manager. Endpoints:
//
//	POST   /v1/jobs          submit a JobSpec; 201 + Job
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     one job's snapshot
//	GET    /v1/jobs/{id}/stream  NDJSON stream of Job snapshots,
//	                         one line per change, until terminal
//	DELETE /v1/jobs/{id}     cancel; 200 + Job
//	GET    /v1/catalog       registered scenarios and protocols
//	GET    /v1/version       build identity
//	GET    /v1/healthz       liveness
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the endpoints onto a fresh mux.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.stream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/catalog", s.catalog)
	s.mux.HandleFunc("GET /v1/version", s.version)
	s.mux.HandleFunc("GET /v1/healthz", s.healthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSONResponse writes v with the given status.
func writeJSONResponse(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSONResponse(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	job, err := s.m.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSONResponse(w, http.StatusCreated, job)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSONResponse(w, http.StatusOK, map[string]any{"jobs": s.m.List()})
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", r.PathValue("id"))
		return
	}
	writeJSONResponse(w, http.StatusOK, job)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		status := http.StatusConflict
		if job.ID == "" {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSONResponse(w, http.StatusOK, job)
}

// stream writes the job's snapshot as one NDJSON line now and after
// every change, ending when the job reaches a terminal state or the
// client disconnects. Snapshots are whole (not deltas): wake signals
// are coalesced, so a slow reader simply observes fewer intermediate
// states, never a gap it must reconcile.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	wake, stop, err := s.m.Watch(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	writeSnap := func(j Job) bool {
		if err := enc.Encode(j); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !writeSnap(job) {
		return
	}
	for !terminal(job.State) {
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
		job, ok = s.m.Get(id)
		if !ok || !writeSnap(job) {
			return
		}
	}
}

// catalogEntry is one registered scenario or protocol.
type catalogEntry struct {
	Name  string `json:"name"`
	Desc  string `json:"desc,omitempty"`
	Usage string `json:"usage,omitempty"`
}

func (s *Server) catalog(w http.ResponseWriter, r *http.Request) {
	var scenarios, protocols []catalogEntry
	for _, reg := range scenario.Catalog() {
		scenarios = append(scenarios, catalogEntry{Name: reg.Name, Desc: reg.Desc, Usage: reg.Usage})
	}
	for _, reg := range consensus.Catalog() {
		protocols = append(protocols, catalogEntry{Name: reg.Name, Desc: reg.Desc, Usage: reg.Usage})
	}
	writeJSONResponse(w, http.StatusOK, map[string]any{
		"scenarios": scenarios,
		"protocols": protocols,
	})
}

func (s *Server) version(w http.ResponseWriter, r *http.Request) {
	writeJSONResponse(w, http.StatusOK, cliutil.Version())
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSONResponse(w, http.StatusOK, map[string]string{"status": "ok"})
}
