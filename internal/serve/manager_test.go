package serve

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// quickSpec is a campaign that finishes in well under a second — the
// workhorse for lifecycle tests that just need jobs to complete.
func quickSpec() JobSpec {
	return JobSpec{
		Kind:               "campaign",
		Preset:             "quick",
		Duration:           "8m",
		Nodes:              40,
		NoTx:               true,
		Shards:             1,
		CheckpointInterval: "1m",
	}
}

// slowSpec is a campaign that runs long enough (roughly a second of
// wall clock) that the kill/drain tests can reliably interrupt it after
// an early checkpoint but far from completion.
func slowSpec() JobSpec {
	return JobSpec{
		Kind:               "campaign",
		Preset:             "quick",
		Duration:           "2h",
		Nodes:              60,
		NoTx:               true,
		Shards:             1,
		CheckpointInterval: "5m",
	}
}

// waitJob polls a job via the watch channel until cond holds or the
// deadline passes, returning the last snapshot.
func waitJob(t *testing.T, m *Manager, id string, timeout time.Duration, cond func(Job) bool) Job {
	t.Helper()
	wake, stop, err := m.Watch(id)
	if err != nil {
		t.Fatalf("Watch(%s): %v", id, err)
	}
	defer stop()
	deadline := time.After(timeout)
	for {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if cond(j) {
			return j
		}
		if terminal(j.State) {
			t.Fatalf("job %s reached %s (error %q) before condition", id, j.State, j.Error)
		}
		select {
		case <-wake:
		case <-deadline:
			t.Fatalf("job %s: condition not met within %v (state %s)", id, timeout, j.State)
		}
	}
}

func isState(state string) func(Job) bool {
	return func(j Job) bool { return j.State == state }
}

func openManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	opts.Dir = dir
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return m
}

func TestCampaignJobLifecycle(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{MaxJobs: 1})
	defer m.Close()

	job, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.State != StateQueued {
		t.Errorf("initial state = %s", job.State)
	}
	// Normalize pinned the machine-dependent knobs into the spec.
	if job.Spec.Shards != 1 || job.Spec.CheckpointInterval != "1m" {
		t.Errorf("pinned spec = %+v", job.Spec)
	}

	final := waitJob(t, m, job.ID, 2*time.Minute, isState(StateDone))
	if len(final.Metrics) == 0 {
		t.Error("done job has no metrics")
	}
	if final.Fingerprints == nil || final.Fingerprints.Record == "" || final.Fingerprints.Chain == "" {
		t.Errorf("done job has no fingerprints: %+v", final.Fingerprints)
	}
	if final.Checkpoint == nil {
		t.Error("done job never checkpointed")
	}
	if final.Progress == nil || final.Progress.SimTime != final.Progress.Duration {
		t.Errorf("final progress = %+v", final.Progress)
	}
	if final.Started == nil || final.Ended == nil {
		t.Error("missing started/ended timestamps")
	}
}

func TestOversubscribedPoolQueues(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three multi-second campaigns; covered by the CI race job")
	}
	m := openManager(t, t.TempDir(), Options{MaxJobs: 1})
	defer m.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		job, err := m.Submit(slowSpec())
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, job.ID)
	}

	// With one slot, at most one job runs at any time; observe while
	// the first is still in flight.
	waitJob(t, m, ids[0], time.Minute, isState(StateRunning))
	running := 0
	for _, j := range m.List() {
		if j.State == StateRunning {
			running++
		}
	}
	if running != 1 {
		t.Errorf("%d jobs running concurrently with MaxJobs=1", running)
	}

	for _, id := range ids {
		waitJob(t, m, id, 5*time.Minute, isState(StateDone))
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{MaxJobs: 1})
	defer m.Close()

	long := quickSpec()
	long.Duration = "4h" // would run for minutes; cancellation cuts it short
	running, err := m.Submit(long)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	queued, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Cancel the queued job: immediate transition.
	j, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel(queued): %v", err)
	}
	if j.State != StateCancelled {
		t.Errorf("queued job after cancel = %s", j.State)
	}

	// Cancel the running job: transitions when the engine stops.
	waitJob(t, m, running.ID, time.Minute, isState(StateRunning))
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatalf("Cancel(running): %v", err)
	}
	j = waitJob(t, m, running.ID, time.Minute, func(j Job) bool { return terminal(j.State) })
	if j.State != StateCancelled {
		t.Errorf("running job after cancel = %s (error %q)", j.State, j.Error)
	}

	// Cancelling a finished job is a conflict.
	if _, err := m.Cancel(running.ID); err == nil {
		t.Error("Cancel on terminal job succeeded")
	}
}

func TestKillAndRestoreCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three multi-second campaigns; covered by the CI race job")
	}
	spec := slowSpec()

	// Reference: the same job on an uninterrupted server.
	refDir := t.TempDir()
	ref := openManager(t, refDir, Options{MaxJobs: 1})
	refJob, err := ref.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(ref): %v", err)
	}
	refFinal := waitJob(t, ref, refJob.ID, 5*time.Minute, isState(StateDone))
	ref.Close()

	// Victim: kill the server after the first checkpoint lands.
	dir := t.TempDir()
	m := openManager(t, dir, Options{MaxJobs: 1})
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitJob(t, m, job.ID, time.Minute, func(j Job) bool { return j.Checkpoint != nil })
	m.Kill()

	// The store must look crashed: job.json still says running.
	var onDisk Job
	if err := readJSON(filepath.Join(dir, "jobs", job.ID, "job.json"), &onDisk); err != nil {
		t.Fatalf("read crashed job.json: %v", err)
	}
	if onDisk.State != StateRunning {
		t.Fatalf("crashed store state = %s, want running", onDisk.State)
	}

	// Restart: the job requeues, resumes from its checkpoint, and must
	// reproduce the uninterrupted run's fingerprints bit for bit.
	m2 := openManager(t, dir, Options{MaxJobs: 1})
	defer m2.Close()
	j, ok := m2.Get(job.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if j.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1", j.Resumed)
	}
	final := waitJob(t, m2, job.ID, 5*time.Minute, isState(StateDone))
	if final.Fingerprints == nil || refFinal.Fingerprints == nil {
		t.Fatal("missing fingerprints")
	}
	if *final.Fingerprints != *refFinal.Fingerprints {
		t.Errorf("restored fingerprints %+v != uninterrupted %+v",
			*final.Fingerprints, *refFinal.Fingerprints)
	}
}

func TestKillAndRestoreSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~18 sweep campaigns; covered by the CI race job")
	}
	// Each run costs a few hundred milliseconds, so with one worker the
	// victim is reliably killed with later runs still pending.
	spec := JobSpec{
		Kind:     "sweep",
		Preset:   "quick",
		Duration: "30m",
		Nodes:    50,
		NoTx:     true,
		Shards:   1,
		Sweep:    &SweepSpec{Seeds: 6},
	}

	refDir := t.TempDir()
	ref := openManager(t, refDir, Options{MaxJobs: 1, SweepWorkers: 2})
	refJob, err := ref.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(ref): %v", err)
	}
	refFinal := waitJob(t, ref, refJob.ID, 3*time.Minute, isState(StateDone))
	ref.Close()

	dir := t.TempDir()
	m := openManager(t, dir, Options{MaxJobs: 1, SweepWorkers: 1})
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Kill once at least one run has completed and been persisted.
	waitJob(t, m, job.ID, 2*time.Minute, func(j Job) bool { return len(j.SweepRuns) >= 1 })
	m.Kill()

	m2 := openManager(t, dir, Options{MaxJobs: 1, SweepWorkers: 2})
	defer m2.Close()
	final := waitJob(t, m2, job.ID, 3*time.Minute, isState(StateDone))
	if final.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1", final.Resumed)
	}
	if len(final.SweepRuns) != 6 {
		t.Fatalf("sweep runs = %d, want 6", len(final.SweepRuns))
	}
	restored := 0
	for _, r := range final.SweepRuns {
		if r.Restored {
			restored++
		}
	}
	if restored == 0 {
		t.Error("no runs restored from the persisted results")
	}

	// The aggregate over restored + re-executed runs must match the
	// uninterrupted server's byte for byte.
	got, err := json.Marshal(final.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(refFinal.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("restored sweep aggregate differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

func TestDrainRequeuesRunningJobs(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{MaxJobs: 1})

	long := quickSpec()
	long.Duration = "2h"
	long.CheckpointInterval = "1m"
	job, err := m.Submit(long)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitJob(t, m, job.ID, time.Minute, func(j Job) bool { return j.Checkpoint != nil })
	m.Close() // graceful drain: stop + requeue

	var onDisk Job
	if err := readJSON(filepath.Join(dir, "jobs", job.ID, "job.json"), &onDisk); err != nil {
		t.Fatalf("read drained job.json: %v", err)
	}
	if onDisk.State != StateQueued || onDisk.Resumed != 1 {
		t.Errorf("drained job = state %s, resumed %d; want queued, 1", onDisk.State, onDisk.Resumed)
	}

	// Submitting into a draining/closed manager fails.
	if _, err := m.Submit(quickSpec()); err == nil {
		t.Error("Submit after Close succeeded")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{MaxJobs: 1})
	defer m.Close()

	cases := []struct {
		name string
		spec JobSpec
		frag string
	}{
		{"missing kind", JobSpec{}, "kind required"},
		{"bad kind", JobSpec{Kind: "banana"}, "unknown job kind"},
		{"campaign with sweep block", JobSpec{Kind: "campaign", Sweep: &SweepSpec{}}, "must not carry"},
		{"bad preset", JobSpec{Kind: "campaign", Preset: "huge"}, "unknown preset"},
		{"bad duration", JobSpec{Kind: "campaign", Duration: "fast"}, "duration"},
		{"bad protocol", JobSpec{Kind: "campaign", Protocol: "pow2"}, "unknown protocol"},
		{"bad protocol param", JobSpec{Kind: "campaign", Protocol: "ethereum:gravity=9"}, "unknown parameter"},
		{"bad scenario", JobSpec{Kind: "campaign", Scenarios: []string{"mayhem"}}, "unknown scenario"},
		{"bad sweep protocol", JobSpec{Kind: "sweep", Sweep: &SweepSpec{Protocols: []string{"pow2"}}}, "unknown protocol"},
		{"bad checkpoint interval", JobSpec{Kind: "campaign", CheckpointInterval: "-5m"}, "checkpoint_interval"},
	}
	for _, tc := range cases {
		if _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: Submit succeeded", tc.name)
		} else if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want fragment %q", tc.name, err, tc.frag)
		}
	}
	if jobs := m.List(); len(jobs) != 0 {
		t.Errorf("%d jobs created by invalid submissions", len(jobs))
	}
}
