module ethmeasure

go 1.21
