module ethmeasure

go 1.22
