// Package ethmeasure reproduces the measurement study "Impact of
// Geo-distribution and Mining Pools on Blockchains: A Study of
// Ethereum" (Silva, Vavřička, Barreto, Matos — DSN 2020) as a
// self-contained Go library.
//
// Because a live one-month mainnet campaign is not reproducible on
// demand, the library ships the substrate the paper measured: a
// deterministic discrete-event simulation of the Ethereum network —
// Geth 1.8-style block/transaction relay, geo-distributed mining pools
// with the paper's April-2019 power shares, and the selfish behaviours
// the paper documents — plus the instrumented measurement nodes and
// the full analysis pipeline that regenerates every table and figure
// of the paper's evaluation.
//
// Quick start:
//
//	cfg := ethmeasure.QuickConfig()
//	campaign, err := ethmeasure.NewCampaign(cfg)
//	if err != nil { ... }
//	results, err := campaign.Run()
//	if err != nil { ... }
//	ethmeasure.WriteReport(os.Stdout, results)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package ethmeasure

import (
	"context"
	"io"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/core"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/mining"
	"ethmeasure/internal/report"
	"ethmeasure/internal/scenario"
	"ethmeasure/internal/sweep"
	"ethmeasure/internal/types"
)

// Re-exported configuration and campaign types. These aliases form the
// stable public API over the internal implementation packages.
type (
	// Config fully describes a measurement campaign.
	Config = core.Config
	// VantageSpec places one instrumented measurement node.
	VantageSpec = core.VantageSpec
	// Campaign is one configured run.
	Campaign = core.Campaign
	// Results bundles the dataset and every per-figure analysis.
	Results = core.Results
	// RunStats summarises a finished run.
	RunStats = core.RunStats
	// PoolSpec describes one mining pool.
	PoolSpec = mining.PoolSpec
	// Region is a coarse geographic area.
	Region = geo.Region
	// MachineSpec is one measurement machine (paper Table I).
	MachineSpec = measure.MachineSpec
	// Recorder consumes measurement records — implement it to tap the
	// campaign's record bus (Campaign.AttachRecorder).
	Recorder = measure.Recorder
	// RecordBus fans records out to registered consumers.
	RecordBus = measure.Bus
	// BlockRecord is one logged block-related message reception.
	BlockRecord = measure.BlockRecord
	// TxRecord is one transaction first-observation record.
	TxRecord = measure.TxRecord
	// Collector is the streaming analysis pipeline: the bus consumer
	// that folds records into the shared arrival index and finalizes
	// every record-driven figure without retaining the records.
	Collector = analysis.Collector
	// PoolID identifies a mining pool in winner sequences.
	PoolID = types.PoolID
	// HistoricalEpoch is one period of chain history with its own
	// miner-power distribution (whole-blockchain scan, §III-D).
	HistoricalEpoch = mining.HistoricalEpoch
	// SequencesResult is the Figure 7 / §III-D sequence analysis.
	SequencesResult = analysis.SequencesResult
	// LogFormat selects the on-disk encoding of campaign logs
	// (Config.SpillFormat, Campaign.WriteLogs output).
	LogFormat = logs.Format
)

// Campaign log encodings.
const (
	// LogFormatBinary is the compact binary ethlog framing (default).
	LogFormatBinary = logs.FormatBinary
	// LogFormatJSONL is line-delimited JSON, for external tooling.
	LogFormatJSONL = logs.FormatJSONL
)

// Geographic regions (the first four are the paper's vantage points).
const (
	NorthAmerica  = geo.NorthAmerica
	EasternAsia   = geo.EasternAsia
	WesternEurope = geo.WesternEurope
	CentralEurope = geo.CentralEurope
	EasternEurope = geo.EasternEurope
	SoutheastAsia = geo.SoutheastAsia
	SouthAmerica  = geo.SouthAmerica
	Oceania       = geo.Oceania
)

// DefaultConfig returns the laptop-scale campaign preset.
func DefaultConfig() Config { return core.DefaultConfig() }

// QuickConfig returns a small preset for tests and examples.
func QuickConfig() Config { return core.QuickConfig() }

// PaperScaleConfig approximates the paper's real campaign dimensions.
func PaperScaleConfig() Config { return core.PaperScaleConfig() }

// NewCampaign validates cfg and builds the full simulated system.
func NewCampaign(cfg Config) (*Campaign, error) { return core.NewCampaign(cfg) }

// Run-control types for Campaign.RunContext: cancellation, live
// progress callbacks and checkpoint/resume (see internal/core).
type (
	// RunOptions configures one RunContext invocation.
	RunOptions = core.RunOptions
	// RunProgress is one live progress snapshot.
	RunProgress = core.Progress
	// Checkpoint is one resumable barrier of a running campaign.
	Checkpoint = logs.Checkpoint
)

// ErrResumeDiverged reports that a resumed campaign failed fingerprint
// verification at its checkpoint barrier — the replayed prefix did not
// reproduce the checkpointed run bit for bit.
var ErrResumeDiverged = core.ErrResumeDiverged

// PaperPools returns the 15 named pools (plus remainder) with the
// paper's measured power shares and behaviour calibration.
func PaperPools() []PoolSpec { return mining.PaperPools() }

// UniformGatewayPools is PaperPools with geography removed (ablation).
func UniformGatewayPools() []PoolSpec { return mining.UniformGatewayPools() }

// PaperInfrastructure returns the paper's Table I machine specs.
func PaperInfrastructure() []MachineSpec { return measure.PaperInfrastructure() }

// FastWinners generates n main-chain block winners without simulating
// the network (chain-level fast simulation). Consecutive-sequence
// statistics depend only on the winner distribution, so this powers
// month-scale and whole-history Figure 7 / §III-D studies in
// milliseconds.
func FastWinners(pools []PoolSpec, n int, seed int64) ([]PoolID, []string, error) {
	fc, err := mining.NewFastChain(pools, seed)
	if err != nil {
		return nil, nil, err
	}
	return fc.Winners(n), fc.PoolNames(), nil
}

// DefaultHistory approximates the evolution of Ethereum's miner
// concentration from genesis to block ~7.68M (May 2019).
func DefaultHistory() []HistoricalEpoch { return mining.DefaultHistory() }

// HistoricalWinners concatenates winner sequences across epochs.
func HistoricalWinners(epochs []HistoricalEpoch, seed int64) ([]PoolID, []string, error) {
	return mining.HistoricalWinners(epochs, seed)
}

// AnalyzeSequences computes the Figure 7 analysis over an explicit
// winner sequence.
func AnalyzeSequences(winners []PoolID, poolNames []string, interBlockSec float64, topN int) *SequencesResult {
	return analysis.SequencesFromWinners(winners, poolNames, interBlockSec, topN)
}

// HistoricalSequenceCounts counts runs of length ≥ each threshold (the
// paper's whole-blockchain scan found 102/41/4/1 runs of ≥10/11/12/14).
func HistoricalSequenceCounts(winners []PoolID, thresholds []int) map[int]int {
	return analysis.HistoricalSequenceCounts(winners, thresholds)
}

// ExpectedSequences is the paper's §III-D estimate n·p^k of how many
// k-block runs a pool with power share p produces over n blocks.
func ExpectedSequences(p float64, k, n int) float64 {
	return analysis.ExpectedSequences(p, k, n)
}

// WriteSequences renders a Figure 7 analysis to w.
func WriteSequences(w io.Writer, r *SequencesResult) { report.Figure7(w, r) }

// FinalityResult is the k-block confirmation-rule safety analysis.
type FinalityResult = analysis.FinalityResult

// AnalyzeFinality evaluates the k-block rule over a winner sequence,
// sweeping confirmation depths 1..maxDepth (paper §III-D).
func AnalyzeFinality(winners []PoolID, poolNames []string, maxDepth int) *FinalityResult {
	return analysis.FinalityFromWinners(winners, poolNames, maxDepth)
}

// WriteFinality renders a finality analysis to w.
func WriteFinality(w io.Writer, r *FinalityResult) { report.Finality(w, r) }

// Sweep types: multi-seed, multi-scenario campaign fleets with
// cross-seed aggregate statistics (see internal/sweep).
type (
	// SweepMatrix expands a base Config across seeds and scenario axes.
	SweepMatrix = sweep.Matrix
	// SweepAxis is one scenario dimension of a sweep matrix.
	SweepAxis = sweep.Axis
	// SweepVariant is one setting of a sweep axis.
	SweepVariant = sweep.Variant
	// SweepRunner executes a matrix's campaigns on a worker pool.
	SweepRunner = sweep.Runner
	// SweepRunResult is one campaign's outcome within a sweep.
	SweepRunResult = sweep.RunResult
	// SweepAggregate is the cross-seed summary of a whole sweep.
	SweepAggregate = sweep.AggregateResult
	// KeyMetrics is the flat map of one run's headline scalars.
	KeyMetrics = analysis.KeyMetrics
)

// SweepSeeds returns n consecutive seeds starting at base.
func SweepSeeds(base int64, n int) []int64 { return sweep.Seeds(base, n) }

// SweepNodes varies the regular node count across a sweep.
func SweepNodes(counts ...int) SweepAxis { return sweep.Nodes(counts...) }

// SweepDiscovery varies the topology-construction mechanism.
func SweepDiscovery(vals ...bool) SweepAxis { return sweep.Discovery(vals...) }

// SweepPoolSplits varies the pool population / hash-rate split
// ("paper", "uniform", "equal", "majority").
func SweepPoolSplits(kinds ...string) (SweepAxis, error) { return sweep.PoolSplits(kinds...) }

// SweepChurnProfiles varies node turnover ("none", "default", "heavy").
func SweepChurnProfiles(kinds ...string) (SweepAxis, error) { return sweep.ChurnProfiles(kinds...) }

// RunSweep expands the matrix, executes every campaign on up to
// workers concurrent goroutines (GOMAXPROCS when workers <= 0), and
// folds the per-run metrics into cross-seed mean ± 95% CI aggregates.
// Equal seeds give equal runs, and parallelism never changes results:
// the aggregate is identical to a serial loop over the same matrix.
func RunSweep(ctx context.Context, m *SweepMatrix, workers int) (*SweepAggregate, []SweepRunResult, error) {
	return sweep.Sweep(ctx, m, workers)
}

// DefaultChurnConfig returns the mild churn profile used by the churn
// ablation (node restarts across the regular population).
func DefaultChurnConfig() core.ChurnConfig { return core.DefaultChurnConfig() }

// ChurnConfig models node turnover (see Config.Churn).
type ChurnConfig = core.ChurnConfig

// Scenario types: composable interventions plugged into a campaign via
// Config.Scenarios (see internal/scenario for the plugin catalog:
// churn, withhold, partition, relayoverlay, eclipse, bandwidth,
// churnburst).
type (
	// ScenarioSpec names one scenario plus its parameters; textual form
	// "name[:key=val,...]".
	ScenarioSpec = scenario.Spec
	// ScenarioRegistration describes one catalog entry.
	ScenarioRegistration = scenario.Registration
	// ScenarioResult annotates a run's Results with its scenarios.
	ScenarioResult = analysis.ScenarioResult
)

// ParseScenario reads a scenario spec from "name[:key=val,...]".
func ParseScenario(s string) (ScenarioSpec, error) { return scenario.Parse(s) }

// ScenarioCatalog returns every registered scenario, sorted by name.
func ScenarioCatalog() []ScenarioRegistration { return scenario.Catalog() }

// SweepScenarios varies the composed scenario list across a sweep:
// each spec string is one variant ("none" = the unmodified base).
func SweepScenarios(specs ...string) (SweepAxis, error) { return sweep.Scenarios(specs...) }

// Consensus-protocol types: the pluggable rule set a campaign's chain
// runs under (see internal/consensus for the catalog: ethereum,
// bitcoin, ghost-inclusive).
type (
	// Protocol bundles fork choice, reference (uncle) policy, reward
	// schedule and target interval.
	Protocol = consensus.Protocol
	// ProtocolSpec names one protocol plus its parameters; textual
	// form "name[:key=val,...]". The zero value means ethereum.
	ProtocolSpec = consensus.Spec
	// ProtocolRegistration describes one catalog entry.
	ProtocolRegistration = consensus.Registration
)

// ParseProtocol reads a protocol spec from "name[:key=val,...]".
func ParseProtocol(s string) (ProtocolSpec, error) { return consensus.Parse(s) }

// ProtocolCatalog returns every registered protocol, sorted by name.
func ProtocolCatalog() []ProtocolRegistration { return consensus.Catalog() }

// SweepProtocols varies the consensus rule set across a sweep: each
// spec string is one variant.
func SweepProtocols(specs ...string) (SweepAxis, error) { return sweep.Protocols(specs...) }

// WriteReport renders every available analysis in results to w in the
// order the paper presents them.
func WriteReport(w io.Writer, results *Results) {
	fprintSection := func(fn func()) {
		fn()
		io.WriteString(w, "\n")
	}
	fprintSection(func() { report.TableI(w, measure.PaperInfrastructure()) })
	if results.Propagation != nil {
		fprintSection(func() { report.Figure1(w, results.Propagation) })
	}
	if results.Redundancy != nil {
		fprintSection(func() { report.TableII(w, results.Redundancy) })
	}
	if results.FirstObs != nil {
		fprintSection(func() { report.Figure2(w, results.FirstObs) })
	}
	if results.PoolGeo != nil {
		fprintSection(func() { report.Figure3(w, results.PoolGeo) })
	}
	if results.Commit != nil {
		fprintSection(func() { report.Figure4(w, results.Commit) })
	}
	if results.Ordering != nil {
		fprintSection(func() { report.Figure5(w, results.Ordering) })
	}
	if results.Empty != nil {
		fprintSection(func() { report.Figure6(w, results.Empty) })
	}
	if results.Forks != nil {
		fprintSection(func() { report.TableIII(w, results.Forks) })
	}
	if results.OneMiner != nil {
		fprintSection(func() { report.OneMinerForks(w, results.OneMiner) })
	}
	if results.Sequences != nil {
		fprintSection(func() { report.Figure7(w, results.Sequences) })
	}
	if results.TxProp != nil {
		fprintSection(func() { report.TxPropagation(w, results.TxProp) })
	}
	if results.GeoDelay != nil {
		fprintSection(func() { report.GeoDelay(w, results.GeoDelay) })
	}
	if results.FeeMarket != nil {
		fprintSection(func() { report.FeeMarket(w, results.FeeMarket) })
	}
	if results.InterBlock != nil {
		fprintSection(func() { report.InterBlock(w, results.InterBlock) })
	}
	if results.Throughput != nil {
		fprintSection(func() { report.Throughput(w, results.Throughput) })
	}
	if results.Rewards != nil {
		fprintSection(func() { report.Rewards(w, results.Rewards) })
	}
	if results.Finality != nil {
		fprintSection(func() { report.Finality(w, results.Finality) })
	}
	if results.Withholding != nil {
		fprintSection(func() { report.Withholding(w, results.Withholding) })
	}
}
